"""Serving-path fault injection: crashes, deadlines, drains, races.

Regression suite for the hardening of the queue front-end
(:mod:`repro.serve.engine` + :mod:`repro.serve.futures`): before it, a
serve-loop death stranded every outstanding ``.result()`` waiter forever
and later ``submit()`` calls enqueued into a dead loop and hung too.
Every test here pins a production semantic: handles resolve exactly once,
no code path strands a waiter, deadlines shed late work, and one poisoned
request never takes the engine down.

Clocks are injected (:class:`FakeClock`) wherever the semantics allow, so
the deadline tests are deterministic rather than sleep-calibrated.
"""

import threading
import time

import numpy as np
import pytest

from repro.encoders import build_model
from repro.serve import (
    DeadlineExceeded,
    EngineStopped,
    FeatureSchema,
    InferenceEngine,
    PendingResult,
)
from repro.serve.batcher import BatchBudget, MicroBatcher

FEATURE_DIM, OUT_DIM = 4, 3
SCHEMA = FeatureSchema(feature_dim=FEATURE_DIM, out_dim=OUT_DIM, task_type="multiclass", num_classes=OUT_DIM)


def make_graphs(rng, count=10, lo=5, hi=14):
    from repro.graph.generators import erdos_renyi

    graphs = []
    for _ in range(count):
        g = erdos_renyi(int(rng.integers(lo, hi)), 0.5, rng)
        g.x = rng.normal(size=(g.num_nodes, FEATURE_DIM))
        graphs.append(g)
    return graphs


def make_engine(rng, **kwargs):
    model = build_model("gin", FEATURE_DIM, OUT_DIM, np.random.default_rng(7), hidden_dim=8, num_layers=2)
    return InferenceEngine.from_models([model], SCHEMA, **kwargs)


class FakeClock:
    """Settable monotonic time source."""

    def __init__(self, now=100.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def rng():
    return np.random.default_rng(23)


class TestPendingResult:
    def test_resolves_exactly_once(self):
        handle = PendingResult()
        assert handle._resolve("first") is True
        assert handle._resolve("second") is False
        assert handle._resolve(None, RuntimeError("late")) is False
        assert handle.result(timeout=0.1) == "first"

    def test_error_resolution_raises_stored_error(self):
        handle = PendingResult()
        handle._resolve(None, DeadlineExceeded("too late"))
        assert handle.done()
        with pytest.raises(DeadlineExceeded, match="too late"):
            handle.result(timeout=0.1)

    def test_timeout_when_unresolved(self):
        with pytest.raises(TimeoutError):
            PendingResult().result(timeout=0.01)

    def test_done_callback_after_resolve_runs_immediately(self):
        handle = PendingResult()
        handle._resolve("x")
        seen = []
        handle.add_done_callback(seen.append)
        assert seen == [handle]

    def test_done_callback_fires_once_on_resolve(self):
        handle = PendingResult()
        seen = []
        handle.add_done_callback(seen.append)
        assert seen == []
        handle._resolve("x")
        handle._resolve("y")  # duplicate: callback must not re-fire
        assert seen == [handle]


class TestMicroBatcherDeadlines:
    """The injected-time deadline machinery the serve loop builds on."""

    def test_expire_removes_overdue_and_keeps_live(self):
        batcher = MicroBatcher(BatchBudget(max_graphs=8), flush_timeout=10.0)
        batcher.add("a", 3, now=0.0, deadline=5.0)
        batcher.add("b", 4, now=0.0, deadline=50.0)
        batcher.add("c", 2, now=0.0)  # no deadline: never expires
        assert batcher.expire(now=1.0) == []
        assert batcher.expire(now=6.0) == ["a"]
        assert len(batcher) == 2
        assert batcher._nodes == 6  # a's nodes no longer count against the budget

    def test_expire_everything_resets_flush_deadline(self):
        batcher = MicroBatcher(BatchBudget(max_graphs=8), flush_timeout=1.0)
        batcher.add("a", 1, now=0.0, deadline=2.0)
        assert batcher.deadline == pytest.approx(1.0)
        assert batcher.expire(now=3.0) == ["a"]
        assert batcher.deadline is None and len(batcher) == 0

    def test_next_wake_is_min_of_flush_and_request_deadlines(self):
        batcher = MicroBatcher(BatchBudget(max_graphs=8), flush_timeout=10.0)
        assert batcher.next_wake(now=0.0) is None
        batcher.add("a", 1, now=0.0)                  # flush deadline 10.0
        assert batcher.next_wake(now=0.0) == pytest.approx(10.0)
        batcher.add("b", 1, now=0.0, deadline=4.0)    # earlier request deadline
        assert batcher.next_wake(now=0.0) == pytest.approx(4.0)


class TestPoisonedBatch:
    """One request whose forward explodes must not take the engine down."""

    def test_waiters_get_the_error_and_loop_survives(self, rng):
        engine = make_engine(rng, max_graphs=1, flush_timeout=0.01)
        poisoned = threading.Event()
        real_forward = engine._forward

        def forward(batch):
            if poisoned.is_set():
                poisoned.clear()
                raise RuntimeError("numerical blow-up in packed forward")
            return real_forward(batch)

        engine._forward = forward
        graphs = make_graphs(rng, 2)
        engine.start()
        try:
            poisoned.set()
            bad = engine.submit(graphs[0])
            with pytest.raises(RuntimeError, match="blow-up"):
                bad.result(timeout=10.0)
            # The serve loop is still alive: the next request serves fine.
            good = engine.submit(graphs[1])
            assert good.result(timeout=10.0).probs is not None
        finally:
            engine.stop()

    def test_sync_predict_poison_does_not_leak_state(self, rng):
        """The synchronous path raises to the caller and stays usable."""
        engine = make_engine(rng)
        graphs = make_graphs(rng, 2)
        real_forward = engine._forward
        engine._forward = lambda batch: (_ for _ in ()).throw(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            engine.predict([graphs[0]])
        engine._forward = real_forward
        assert engine.predict([graphs[1]])[0].probs is not None


class TestServeLoopDeath:
    """A bug outside the guarded forward kills the loop — strand nobody.

    Before the hardening, these ``result()`` calls blocked forever and
    every later ``submit()`` enqueued into the dead loop and hung too.
    """

    def _dead_engine(self, rng):
        engine = make_engine(rng, max_graphs=1, flush_timeout=0.01)
        engine._run_pending = lambda items: (_ for _ in ()).throw(
            AttributeError("engine bug outside the guarded forward")
        )
        return engine

    def test_outstanding_handle_fails_instead_of_hanging(self, rng):
        engine = self._dead_engine(rng)
        engine.start()
        handle = engine.submit(make_graphs(rng, 1)[0])
        with pytest.raises((EngineStopped, AttributeError)) as excinfo:
            handle.result(timeout=10.0)
        # The in-flight batch sees the bug itself; anything still queued
        # sees EngineStopped chained to it.  Either way the cause is kept.
        err = excinfo.value
        root = err if isinstance(err, AttributeError) else err.__cause__
        assert isinstance(root, AttributeError)
        engine.stop()

    def test_submit_after_death_fails_fast(self, rng):
        engine = self._dead_engine(rng)
        graphs = make_graphs(rng, 2)
        engine.start()
        handle = engine.submit(graphs[0])
        with pytest.raises(Exception):
            handle.result(timeout=10.0)
        # The loop recorded its death; submitting must raise immediately,
        # not enqueue into a dead queue and hang the caller's result().
        deadline = time.monotonic() + 10.0
        while engine._loop_error is None and time.monotonic() < deadline:
            time.sleep(0.005)
        with pytest.raises(EngineStopped, match="died") as excinfo:
            engine.submit(graphs[1])
        assert isinstance(excinfo.value.__cause__, AttributeError)
        engine.stop()

    def test_stop_after_death_does_not_hang(self, rng):
        engine = self._dead_engine(rng)
        engine.start()
        handle = engine.submit(make_graphs(rng, 1)[0])
        with pytest.raises(Exception):
            handle.result(timeout=10.0)
        engine.stop()  # joins the already-dead worker; must not raise or hang
        assert engine._worker is None

    def test_requests_queued_behind_the_death_resolve(self, rng):
        """Items sitting in the queue when the loop dies get EngineStopped."""
        engine = make_engine(rng, max_graphs=1, flush_timeout=0.01)
        graphs = make_graphs(rng, 6)
        release = threading.Event()

        def blocking_bug(items):
            release.wait(10.0)
            raise AttributeError("engine bug outside the guarded forward")

        engine._run_pending = blocking_bug
        engine.start()
        first = engine.submit(graphs[0])         # enters the loop, blocks
        backlog = []
        for g in graphs[1:]:                     # queue up behind it
            backlog.append(engine.submit(g))
        release.set()                            # now the loop dies
        with pytest.raises(Exception):
            first.result(timeout=10.0)
        for handle in backlog:
            with pytest.raises(EngineStopped):
                handle.result(timeout=10.0)
        engine.stop()


class TestDeadlines:
    def test_already_expired_request_is_shed_not_served(self, rng):
        clock = FakeClock(now=100.0)
        engine = make_engine(rng, max_graphs=1, flush_timeout=0.01, clock=clock)
        served = []
        real_forward = engine._forward
        engine._forward = lambda batch: served.append(1) or real_forward(batch)
        engine.start()
        try:
            handle = engine.submit(make_graphs(rng, 1)[0], deadline=50.0)
            with pytest.raises(DeadlineExceeded, match="expired"):
                handle.result(timeout=10.0)
            assert served == []  # shed before the forward, not after
        finally:
            engine.stop()

    def test_future_deadline_serves_normally(self, rng):
        clock = FakeClock(now=100.0)
        engine = make_engine(rng, max_graphs=1, flush_timeout=0.01, clock=clock)
        engine.start()
        try:
            handle = engine.submit(make_graphs(rng, 1)[0], deadline=1e9)
            assert handle.result(timeout=10.0).probs is not None
        finally:
            engine.stop()

    def test_deadline_expires_while_waiting_in_batcher(self, rng):
        """A queued request dies the moment its deadline passes.

        The batch budget is never filled and the (fake-clock) flush window
        never elapses, so only the expiry sweep can resolve this handle.
        """
        clock = FakeClock(now=100.0)
        engine = make_engine(rng, max_graphs=1000, flush_timeout=5.0, clock=clock)
        engine.start()
        try:
            handle = engine.submit(make_graphs(rng, 1)[0], deadline=101.0)
            assert not handle.done()
            clock.advance(2.0)  # past the request deadline, before the window
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=10.0)
        finally:
            engine.stop()

    def test_mixed_batch_serves_live_and_sheds_expired(self, rng):
        clock = FakeClock(now=100.0)
        engine = make_engine(rng, max_graphs=2, flush_timeout=5.0, clock=clock)
        graphs = make_graphs(rng, 2)
        engine.start()
        try:
            dead = engine.submit(graphs[0], deadline=50.0)   # already expired
            live = engine.submit(graphs[1])                  # fills the batch
            assert live.result(timeout=10.0).probs is not None
            with pytest.raises(DeadlineExceeded):
                dead.result(timeout=10.0)
        finally:
            engine.stop()


class TestDrain:
    def test_stop_resolves_every_handle_exactly_once(self, rng):
        engine = make_engine(rng, max_graphs=1000, flush_timeout=30.0)
        graphs = make_graphs(rng, 5)
        engine.start()
        handles = [engine.submit(g) for g in graphs]
        resolutions = []
        for handle in handles:
            handle.add_done_callback(resolutions.append)
        engine.stop()
        assert all(h.done() for h in handles)
        assert len(resolutions) == len(handles)  # once each, no duplicates
        for handle in handles:
            assert handle.result(timeout=0.1).probs is not None

    def test_submit_racing_stop_never_strands_a_handle(self, rng):
        """Submitters hammering the engine while it stops: every handle
        either serves or fails with EngineStopped; none hang, none double-
        resolve, and no submit() call itself hangs."""
        engine = make_engine(rng, max_graphs=4, flush_timeout=0.002)
        graphs = make_graphs(rng, 4)
        handles, errors = [], []
        lock = threading.Lock()
        go = threading.Event()

        def submitter(seed):
            go.wait(5.0)
            local_rng = np.random.default_rng(seed)
            for i in range(25):
                g = graphs[int(local_rng.integers(len(graphs)))]
                try:
                    h = engine.submit(g)
                except (EngineStopped, RuntimeError) as err:
                    with lock:
                        errors.append(err)
                    return
                with lock:
                    handles.append(h)

        engine.start()
        threads = [threading.Thread(target=submitter, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        go.set()
        time.sleep(0.02)  # let some traffic through, then stop mid-flight
        engine.stop()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive()
        assert handles, "race produced no accepted submissions"
        for handle in handles:
            try:
                result = handle.result(timeout=10.0)
                assert result.probs is not None
            except EngineStopped:
                pass  # rejected by the drain: legal, as long as it resolved
        # Post-stop submissions must keep failing fast.
        with pytest.raises((EngineStopped, RuntimeError)):
            engine.submit(graphs[0])

    def test_restart_after_stop_serves_again(self, rng):
        engine = make_engine(rng, max_graphs=1, flush_timeout=0.01)
        (graph,) = make_graphs(rng, 1)
        engine.start()
        assert engine.submit(graph).result(timeout=10.0) is not None
        engine.stop()
        engine.start()
        try:
            assert engine.submit(graph).result(timeout=10.0) is not None
        finally:
            engine.stop()

    def test_restart_recovers_a_dead_serve_loop(self, rng):
        """``restart()`` is the recovery verb for a killed loop: after the
        loop dies (submit fails fast with EngineStopped), one call brings
        the queue front-end back over the same models."""
        engine = make_engine(rng, max_graphs=1, flush_timeout=0.01)
        graphs = make_graphs(rng, 2)
        engine._run_pending = lambda items: (_ for _ in ()).throw(
            AttributeError("engine bug outside the guarded forward")
        )
        engine.start()
        handle = engine.submit(graphs[0])
        with pytest.raises(Exception):
            handle.result(timeout=10.0)
        deadline = time.monotonic() + 10.0
        while engine._loop_error is None and time.monotonic() < deadline:
            time.sleep(0.005)
        with pytest.raises(EngineStopped, match="died"):
            engine.submit(graphs[0])
        del engine._run_pending  # the bug is fixed; bring the loop back
        engine.restart()
        try:
            assert engine._loop_error is None
            assert engine.submit(graphs[1]).result(timeout=10.0).probs is not None
        finally:
            engine.stop()
