"""Autograd-tape profiling: patch/restore, op capture, report, CLI.

Covers :mod:`repro.obs.profile` and the ``python -m repro.obs`` CLI:

* :func:`profile_mode` patches the tape's kernel entry points *only for
  the duration of the context* — outside it the originals are bound, so
  profiling-off costs literally zero;
* a small forward/backward run inside the context lands per-op calls,
  inclusive wall time and output bytes in the snapshot;
* re-entrancy — nested contexts share one set of patches;
* :func:`format_report` table shape, :func:`dump_profile` JSON and the
  ``repro.obs report`` / ``repro.obs metrics`` subcommands.
"""

import json

import numpy as np
import pytest

from repro.autograd import functional
from repro.autograd.tensor import Tensor
from repro.obs.__main__ import main as obs_main
from repro.obs.profile import (
    dump_profile,
    format_report,
    profile_mode,
    profile_snapshot,
    reset_profile,
)
from repro.obs.registry import FLAGS


def tensor_workload():
    a = Tensor(np.ones((8, 4)), requires_grad=True)
    b = Tensor(np.full((8, 4), 2.0))
    loss = ((a * b + a).relu()).sum()
    loss.backward()
    return loss


class TestPatchLifecycle:
    def test_patches_installed_inside_and_removed_outside(self):
        assert not hasattr(Tensor.__add__, "_obs_profiled")
        assert not hasattr(functional.scatter_add_rows, "_obs_profiled")
        with profile_mode():
            assert hasattr(Tensor.__add__, "_obs_profiled")
            assert hasattr(functional.scatter_add_rows, "_obs_profiled")
            assert FLAGS.profiling
        assert not hasattr(Tensor.__add__, "_obs_profiled")
        assert not hasattr(functional.scatter_add_rows, "_obs_profiled")
        assert not FLAGS.profiling

    def test_patches_removed_even_when_body_raises(self):
        with pytest.raises(RuntimeError):
            with profile_mode():
                raise RuntimeError("mid-profile crash")
        assert not hasattr(Tensor.__mul__, "_obs_profiled")
        assert not FLAGS.profiling

    def test_nested_contexts_share_one_patch_set(self):
        with profile_mode():
            outer_add = Tensor.__add__
            with profile_mode(reset=False):
                assert Tensor.__add__ is outer_add  # not double-wrapped
            assert hasattr(Tensor.__add__, "_obs_profiled")  # outer still on
        assert not hasattr(Tensor.__add__, "_obs_profiled")

    def test_profiled_op_results_match_unprofiled(self):
        plain = tensor_workload().data
        with profile_mode():
            profiled = tensor_workload().data
        np.testing.assert_array_equal(plain, profiled)


class TestCapture:
    def test_workload_lands_per_op_stats(self):
        with profile_mode() as snapshot:
            tensor_workload()
            stats = snapshot()
        for op in ("tensor.add", "tensor.mul", "tensor.relu",
                   "tensor.sum", "tensor.backward"):
            assert op in stats, f"{op} missing from {sorted(stats)}"
            assert stats[op]["calls"] >= 1
            assert stats[op]["seconds"] >= 0.0
        # Elementwise ops produce 8x4 float64 outputs: 256 bytes per call.
        assert stats["tensor.add"]["bytes"] >= 256

    def test_reset_on_entry_and_explicit_reset(self):
        with profile_mode():
            tensor_workload()
        assert profile_snapshot()  # survives context exit
        with profile_mode():  # reset=True default wipes the old run
            assert profile_snapshot() == {}
        reset_profile()
        assert profile_snapshot() == {}

    def test_registry_collector_mirrors_profile(self):
        from repro.obs.registry import registry

        with profile_mode():
            tensor_workload()
            text = registry.render()
        assert 'repro_profile_op_calls_total{op="tensor.add"}' in text
        assert "repro_profile_op_seconds_total" in text


class TestReporting:
    def test_format_report_table(self):
        stats = {
            "tensor.matmul": {"calls": 10, "seconds": 2.0, "bytes": 1_000_000},
            "tensor.add": {"calls": 100, "seconds": 0.5, "bytes": 2_000_000},
        }
        report = format_report(stats, top=1)
        assert "tensor.matmul" in report          # sorted by seconds
        assert "tensor.add" not in report.split("total")[0].splitlines()[2]
        assert "total (inclusive)" in report

    def test_format_report_empty(self):
        assert "no profiled ops" in format_report({})

    def test_dump_profile_round_trips_through_report_cli(self, tmp_path, capsys):
        with profile_mode():
            tensor_workload()
            dump = dump_profile(str(tmp_path / "profile.json"))
        assert dump["kind"] == "repro-obs-profile"
        assert obs_main(["report", str(tmp_path / "profile.json"), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "tensor.add" in out or "tensor.backward" in out
        assert "us/call" in out

    def test_report_cli_exec_profiles_a_script(self, tmp_path, capsys):
        script = tmp_path / "workload.py"
        script.write_text(
            "import sys\n"
            "import numpy as np\n"
            "from repro.autograd.tensor import Tensor\n"
            "assert sys.argv[1] == 'passthrough'\n"
            "(Tensor(np.ones((4, 4)), requires_grad=True) * 2.0).sum().backward()\n"
        )
        json_out = tmp_path / "out.json"
        code = obs_main([
            "report", "--exec", str(script), "--json", str(json_out),
            "--", "passthrough",
        ])
        assert code == 0
        assert "tensor.mul" in capsys.readouterr().out
        ops = json.loads(json_out.read_text())["ops"]
        assert ops["tensor.mul"]["calls"] >= 1
        # Patches came off after the CLI run.
        assert not hasattr(Tensor.__mul__, "_obs_profiled")

    def test_report_cli_rejects_missing_source(self):
        with pytest.raises(SystemExit):
            obs_main(["report"])

    def test_metrics_subcommand_prints_exposition(self, capsys):
        assert obs_main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "repro_cache_events_total" in out
