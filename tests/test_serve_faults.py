"""Fault injection, supervision and crash recovery for the serving stack.

Covers :mod:`repro.serve.faults`, :mod:`repro.serve.supervisor` and the
retry machinery in :mod:`repro.serve.pool`:

* the fault grammar parses/round-trips and rejects bad specs loudly;
* injection is deterministic for a given spec + seed and each injection
  point (admission, engine loop, worker serve loop) actually fires;
* a worker killed by the ``worker_crash`` fault respawns and the
  requests it stranded are transparently retried to success — with
  **exactly-once** handle resolution asserted by instrumenting
  ``PendingResult._resolve``;
* retries respect ``retry_limit`` and the per-request deadline budget;
* the supervisor's backoff/abandon/health state machine.
"""

import threading
import time

import numpy as np
import pytest

from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.serve import (
    DeadlineExceeded,
    EngineStopped,
    FeatureSchema,
    InferenceEngine,
    ModelArtifact,
    ModelSpec,
    PendingResult,
    QueueFull,
    RespawnPolicy,
    WorkerPool,
    WorkerSupervisor,
    injected_faults,
    parse_faults,
)
from repro.serve.faults import FaultInjector
from repro.serve.net import EngineBackend

FEATURE_DIM, OUT_DIM = 5, 3
SCHEMA = FeatureSchema(
    feature_dim=FEATURE_DIM, out_dim=OUT_DIM, task_type="multiclass",
    metric="accuracy", num_classes=OUT_DIM, dataset="unit-test",
)

#: Fast-recovery knobs shared by the chaos tests below: near-immediate
#: respawn, deterministic (jitter-free) backoff.
FAST_RESPAWN = RespawnPolicy(backoff_base=0.01, backoff_max=0.05, jitter=0.0)


def make_graphs(rng, count=6, lo=5, hi=12):
    graphs = []
    for _ in range(count):
        g = erdos_renyi(int(rng.integers(lo, hi)), 0.5, rng)
        g.x = rng.normal(size=(g.num_nodes, FEATURE_DIM))
        graphs.append(g)
    return graphs


@pytest.fixture
def rng():
    return np.random.default_rng(23)


@pytest.fixture(scope="module")
def artifact():
    rng = np.random.default_rng(17)
    spec = ModelSpec("gin", hidden_dim=8, num_layers=2)
    models = [spec.build(SCHEMA) for _ in range(2)]
    graphs = make_graphs(np.random.default_rng(3), 6)
    for model in models:
        model.train()
        model(GraphBatch.from_graphs(graphs))
        model.eval()
    return ModelArtifact.from_models(models, spec, SCHEMA)


# ----------------------------------------------------------------------
# Grammar + determinism
# ----------------------------------------------------------------------

class TestFaultGrammar:
    def test_full_spec_parses(self):
        plan = parse_faults("worker_crash@batch=3;slow_batch@p=0.1,ms=50;queue_reject@p=0.05")
        assert plan == {
            "worker_crash": {"batch": 3.0},
            "slow_batch": {"p": 0.1, "ms": 50.0},
            "queue_reject": {"p": 0.05},
        }

    def test_empty_and_none_disarm(self):
        assert parse_faults(None) == {}
        assert parse_faults("") == {}
        assert parse_faults("  ;  ") == {}
        assert not FaultInjector("").enabled

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault 'disk_full'"):
            parse_faults("disk_full@p=0.1")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter 'q'"):
            parse_faults("slow_batch@q=1")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            parse_faults("slow_batch@ms=fast")

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError, match=r"p must be in \[0, 1\]"):
            parse_faults("queue_reject@p=1.5")

    def test_worker_crash_needs_a_trigger(self):
        with pytest.raises(ValueError, match="batch=N or p=F"):
            parse_faults("worker_crash")

    def test_describe_round_trips(self):
        spec = "slow_batch@ms=50,p=0.1;worker_crash@batch=3"
        injector = FaultInjector(spec, seed=7)
        assert parse_faults(injector.describe()) == parse_faults(spec)

    def test_injected_faults_context_restores(self):
        from repro.serve import FAULTS

        assert not FAULTS.enabled
        with injected_faults("queue_reject@p=1"):
            assert FAULTS.enabled
            assert FAULTS.queue_reject()
        assert not FAULTS.enabled


class TestDeterminism:
    def test_batch_crash_fires_every_nth(self):
        injector = FaultInjector("worker_crash@batch=3")
        fired = [injector.worker_crash() for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_probabilistic_draws_repeat_for_a_seed(self):
        a = FaultInjector("slow_batch@p=0.5,ms=10", seed=11)
        b = FaultInjector("slow_batch@p=0.5,ms=10", seed=11)
        assert [a.slow_batch_s() for _ in range(32)] == [b.slow_batch_s() for _ in range(32)]

    def test_different_seeds_diverge(self):
        a = FaultInjector("queue_reject@p=0.5", seed=1)
        b = FaultInjector("queue_reject@p=0.5", seed=2)
        assert [a.queue_reject() for _ in range(64)] != [b.queue_reject() for _ in range(64)]


# ----------------------------------------------------------------------
# Injection points
# ----------------------------------------------------------------------

class TestInjectionPoints:
    def test_queue_reject_sheds_pool_submissions(self, artifact, rng):
        pool = WorkerPool(artifact, num_workers=1, flush_timeout=0.005)
        pool._started = True  # admission only; no workers needed
        try:
            with injected_faults("queue_reject@p=1"):
                with pytest.raises(QueueFull, match="fault injection"):
                    pool.submit(make_graphs(rng, 1)[0])
        finally:
            pool.stop()

    def test_queue_reject_sheds_engine_backend_submissions(self, artifact, rng):
        engine = InferenceEngine(artifact, flush_timeout=0.005)
        backend = EngineBackend(engine)
        try:
            with injected_faults("queue_reject@p=1"):
                with pytest.raises(QueueFull, match="fault injection"):
                    backend.submit(make_graphs(rng, 1)[0])
        finally:
            backend.stop()

    def test_slow_batch_stalls_the_engine_loop(self, artifact, rng):
        engine = InferenceEngine(artifact, flush_timeout=0.002).start()
        try:
            graph = make_graphs(rng, 1)[0]
            engine.submit(graph).result(timeout=30.0)  # warm (compile/caches)
            with injected_faults("slow_batch@p=1,ms=120"):
                started = time.monotonic()
                engine.submit(graph).result(timeout=30.0)
                assert time.monotonic() - started >= 0.1
        finally:
            engine.stop()


# ----------------------------------------------------------------------
# Crash + retry end-to-end (the acceptance-criteria scenario)
# ----------------------------------------------------------------------

@pytest.fixture
def resolution_counts(monkeypatch):
    """Count successful ``PendingResult._resolve`` transitions per handle."""
    counts: dict[int, int] = {}
    lock = threading.Lock()
    original = PendingResult._resolve

    def counting(self, result, error=None):
        won = original(self, result, error)
        if won:
            with lock:
                counts[id(self)] = counts.get(id(self), 0) + 1
        return won

    monkeypatch.setattr(PendingResult, "_resolve", counting)
    return counts


class TestCrashRecovery:
    def test_injected_crashes_recover_exactly_once(self, artifact, rng, resolution_counts):
        """worker_crash@batch=3 on a 1-worker pool: every stranded request
        is retried to a successful answer, each handle resolves exactly
        once (no double set_result), and the supervisor logs restarts."""
        pool = WorkerPool(
            artifact, num_workers=1, flush_timeout=0.005,
            retry_limit=3, retry_backoff=0.01,
            respawn_policy=FAST_RESPAWN,
            faults="worker_crash@batch=3", faults_seed=0,
        ).start()
        handles = []
        try:
            deadline = pool.clock() + 60.0
            for graph in make_graphs(rng, 10):
                handle = pool.submit(graph, deadline=deadline)
                handles.append(handle)
                # Sequential round-trips pin batch boundaries: every 3rd
                # batch of each worker incarnation crashes deterministically.
                assert handle.result(timeout=30.0)["prediction"] in range(OUT_DIM)
            snap = pool.stats_snapshot()
            assert snap["supervisor"]["restarts_total"] >= 2
            assert snap["retries_total"] >= 2
        finally:
            pool.stop()
        assert len(resolution_counts) >= len(handles)
        assert set(resolution_counts.values()) == {1}
        for handle in handles:
            assert resolution_counts[id(handle)] == 1

    def test_retry_limit_exhaustion_surfaces_engine_stopped(self, artifact, rng):
        """retry_limit=0: the stranded request fails with the death recorded
        instead of retrying — but the *pool* stays up for later requests."""
        pool = WorkerPool(
            artifact, num_workers=1, flush_timeout=0.005,
            retry_limit=0, respawn_policy=FAST_RESPAWN,
            faults="worker_crash@batch=2", faults_seed=0,
        ).start()
        try:
            graphs = make_graphs(rng, 3)
            assert pool.submit(graphs[0]).result(timeout=30.0)["prediction"] is not None
            with pytest.raises(EngineStopped, match="retry limit"):
                pool.submit(graphs[1]).result(timeout=30.0)
            # Batch 1 of the respawned worker serves fine.
            assert pool.submit(graphs[2]).result(timeout=30.0)["prediction"] is not None
        finally:
            pool.stop()

    def test_retries_stay_inside_the_deadline_budget(self, artifact, rng):
        """Crash-on-every-batch + a short deadline: the request must fail
        with DeadlineExceeded when its budget runs out mid-recovery, not
        burn all retries serving an answer nobody waits for."""
        pool = WorkerPool(
            artifact, num_workers=1, flush_timeout=0.005,
            retry_limit=8, retry_backoff=0.05,
            respawn_policy=RespawnPolicy(
                backoff_base=0.05, backoff_max=0.2, max_fast_crashes=20, jitter=0.0,
            ),
            faults="worker_crash@batch=1", faults_seed=0,
        ).start()
        try:
            handle = pool.submit(make_graphs(rng, 1)[0], deadline=pool.clock() + 0.3)
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=30.0)
        finally:
            pool.stop()

    def test_chaos_under_concurrent_load_resolves_every_handle(
        self, artifact, rng, resolution_counts
    ):
        """Two workers, crashes every 4 batches, 24 concurrent requests:
        every handle resolves (success or a typed error), exactly once."""
        pool = WorkerPool(
            artifact, num_workers=2, flush_timeout=0.005, max_graphs=2,
            queue_depth=64, retry_limit=3, retry_backoff=0.01,
            respawn_policy=FAST_RESPAWN,
            faults="worker_crash@batch=4", faults_seed=0,
        ).start()
        try:
            deadline = pool.clock() + 60.0
            handles = [pool.submit(g, deadline=deadline) for g in make_graphs(rng, 24)]
            outcomes = {"ok": 0, "failed": 0}
            for handle in handles:
                try:
                    handle.result(timeout=30.0)
                    outcomes["ok"] += 1
                except (EngineStopped, DeadlineExceeded):
                    outcomes["failed"] += 1
            # Recovery must win for the vast majority; nothing may strand.
            assert outcomes["ok"] >= 20
        finally:
            pool.stop()
        assert set(resolution_counts.values()) == {1}


# ----------------------------------------------------------------------
# Supervisor state machine
# ----------------------------------------------------------------------

class _FakeProc:
    def __init__(self, alive=True, pid=4242):
        self._alive = alive
        self.pid = pid

    def is_alive(self):
        return self._alive


class TestSupervisor:
    def test_backoff_grows_and_caps(self):
        sup = WorkerSupervisor(
            lambda i: None, 1,
            policy=RespawnPolicy(backoff_base=0.1, backoff_max=0.5, jitter=0.0),
        )
        slot = sup._slots[0]
        delays = []
        for crashes in (1, 2, 3, 4, 5):
            slot.fast_crashes = crashes
            delays.append(sup._backoff(slot))
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_stays_within_fraction(self):
        sup = WorkerSupervisor(
            lambda i: None, 1,
            policy=RespawnPolicy(backoff_base=0.1, jitter=0.25, seed=3),
        )
        slot = sup._slots[0]
        slot.fast_crashes = 1
        for _ in range(64):
            assert 0.075 <= sup._backoff(slot) <= 0.125

    def test_health_degraded_when_a_slot_is_abandoned(self):
        sup = WorkerSupervisor(lambda i: None, 2)
        sup._slots[0].process = _FakeProc()
        sup._slots[1].abandoned = True
        health = sup.health()
        assert health["status"] == "degraded"
        assert "abandoned" in health["detail"]

    def test_health_unhealthy_when_nothing_can_serve(self):
        sup = WorkerSupervisor(lambda i: None, 1)
        sup._slots[0].abandoned = True
        assert sup.health()["status"] == "unhealthy"

    def test_health_degraded_while_respawn_pending(self):
        sup = WorkerSupervisor(lambda i: None, 1)
        sup._slots[0].respawn_at = 123.0
        health = sup.health()
        assert health["status"] == "degraded"
        assert "respawning" in health["detail"]

    def test_snapshot_shape(self):
        sup = WorkerSupervisor(lambda i: None, 2)
        sup._slots[0].process = _FakeProc()
        snap = sup.snapshot()
        assert snap["target_workers"] == 2
        assert snap["live_workers"] == 1
        assert snap["restarts_total"] == 0
        assert [s["slot"] for s in snap["slots"]] == [0, 1]

    def test_real_processes_respawn_after_kill(self):
        """Integration: supervise trivial sleeper processes, SIGKILL one,
        observe the death callback and the respawn."""
        import multiprocessing as mp
        import os
        import signal

        ctx = mp.get_context("fork")
        deaths = []

        def spawn(index):
            proc = ctx.Process(target=time.sleep, args=(60.0,), daemon=True)
            proc.start()
            return proc

        sup = WorkerSupervisor(
            spawn, 1,
            policy=RespawnPolicy(backoff_base=0.01, jitter=0.0),
            on_death=lambda slot, pid, code: deaths.append((slot, pid, code)),
        ).start()
        try:
            (pid,) = sup.worker_pids()
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                pids = sup.worker_pids()
                if pids and pids != [pid]:
                    break
                time.sleep(0.01)
            assert sup.worker_pids() and sup.worker_pids() != [pid]
            assert deaths and deaths[0][0] == 0 and deaths[0][1] == pid
            assert sup.snapshot()["restarts_total"] == 1
        finally:
            sup.stop()
            for proc in sup.processes():
                proc.terminate()
                proc.join(timeout=5.0)
