"""Multi-process serving: shared-memory weights, pool semantics, crashes.

Covers :mod:`repro.serve.pool`:

* :class:`SharedWeights` — publish/attach round-trips bitwise, views are
  read-only and genuinely zero-copy (no base copy per attach), and an
  engine rebuilt over the segment predicts bitwise-identically to one
  built from the artifact directly.
* :class:`WorkerPool` — submit/result parity with the in-process engine,
  bounded-queue admission control (QueueFull), per-request deadlines
  (DeadlineExceeded), drain-on-stop resolving every handle, poisoned
  requests answering with errors while the worker lives on, a SIGKILLed
  worker respawning (supervisor) with the pool still serving, and a
  crash-looping pool abandoning the slot / reporting down rather than
  stranding handles.
"""

import json
import os
import signal
import time

import warnings

import numpy as np
import pytest

from encoder_specs import STACKABLE_SPECS, spec_params
from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.serve import (
    DeadlineExceeded,
    EngineStopped,
    FeatureSchema,
    InferenceEngine,
    ModelArtifact,
    ModelSpec,
    QueueFull,
    RespawnPolicy,
    SharedWeights,
    WorkerPool,
)
from repro.serve.pool import process_memory

FEATURE_DIM, OUT_DIM = 5, 3
SCHEMA = FeatureSchema(
    feature_dim=FEATURE_DIM, out_dim=OUT_DIM, task_type="multiclass",
    metric="accuracy", num_classes=OUT_DIM, dataset="unit-test",
)


def make_graphs(rng, count=6, lo=5, hi=12):
    graphs = []
    for _ in range(count):
        g = erdos_renyi(int(rng.integers(lo, hi)), 0.5, rng)
        g.x = rng.normal(size=(g.num_nodes, FEATURE_DIM))
        graphs.append(g)
    return graphs


def warm_up(model, graphs):
    model.train()
    model(GraphBatch.from_graphs(graphs))
    model.eval()
    return model


@pytest.fixture
def rng():
    return np.random.default_rng(41)


@pytest.fixture(scope="module")
def artifact():
    rng = np.random.default_rng(17)
    spec = ModelSpec("gin", hidden_dim=8, num_layers=2)
    models = [spec.build(SCHEMA) for _ in range(2)]
    graphs = make_graphs(rng, 6)
    for k, model in enumerate(models):
        nudge = np.random.default_rng(k)
        for p in model.parameters():
            p.data = p.data + nudge.normal(scale=0.05, size=p.data.shape)
        warm_up(model, graphs)  # batch-norm stats off their init
    return ModelArtifact.from_models(models, spec, SCHEMA)


class TestSharedWeights:
    def test_round_trip_is_bitwise(self, artifact):
        shared = SharedWeights.publish(artifact)
        try:
            attached = SharedWeights.attach(shared.manifest)
            try:
                rebuilt = attached.build_artifact()
                assert rebuilt.seeds == artifact.seeds
                for mine, theirs in zip(artifact.states, rebuilt.states):
                    assert set(mine) == set(theirs)
                    for name in mine:
                        np.testing.assert_array_equal(mine[name], theirs[name])
                for mine, theirs in zip(artifact.buffers, rebuilt.buffers):
                    for name in mine:
                        np.testing.assert_array_equal(mine[name], theirs[name])
            finally:
                attached.close()
        finally:
            shared.close(unlink=True)

    def test_views_are_read_only_and_zero_copy(self, artifact):
        shared = SharedWeights.publish(artifact)
        try:
            views = shared.arrays()
            some = next(iter(views["state"].values()))
            assert not some.flags.writeable
            with pytest.raises(ValueError):
                some[...] = 0.0
            # Zero-copy: every view's memory lives in the one shm block.
            total_view_bytes = sum(
                arr.nbytes for kind in views.values() for arr in kind.values()
            )
            assert total_view_bytes <= shared.nbytes
        finally:
            shared.close(unlink=True)

    def test_attach_after_unlink_raises_clear_error(self, artifact):
        shared = SharedWeights.publish(artifact)
        manifest = shared.manifest
        shared.close(unlink=True)
        with pytest.raises(RuntimeError, match="gone|republish"):
            SharedWeights.attach(manifest)

    def test_publisher_exit_without_close_unlinks_segment(self, artifact, tmp_path):
        """A publisher that never calls close() must not leak /dev/shm:
        the finalizer unlinks the segment when the process exits, and a
        late attach diagnoses the gone segment instead of raising a bare
        FileNotFoundError."""
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        manifest_q = ctx.SimpleQueue()

        def publisher():
            shared = SharedWeights.publish(artifact)
            manifest_q.put(shared.manifest)
            # Exit without close(): only the finalizer stands between
            # this segment and a leak until reboot.

        proc = ctx.Process(target=publisher)
        proc.start()
        manifest = manifest_q.get()
        proc.join(timeout=10.0)
        assert proc.exitcode == 0
        with pytest.raises(RuntimeError, match="gone|republish"):
            SharedWeights.attach(manifest)

    def test_close_unlink_is_idempotent_with_finalizer(self, artifact):
        shared = SharedWeights.publish(artifact)
        shared.close(unlink=True)
        shared.close(unlink=True)  # finalizer already ran; must not raise

    def test_engine_over_shared_weights_is_bitwise_identical(self, artifact, rng):
        graphs = make_graphs(rng, 5)
        direct = InferenceEngine(artifact).predict(graphs)
        shared = SharedWeights.publish(artifact)
        try:
            engine = shared.build_engine()
            served = engine.predict(graphs)
            for d, s in zip(direct, served):
                np.testing.assert_array_equal(d.output, s.output)
        finally:
            shared.close(unlink=True)

    def test_dtype_cast_happens_at_publish(self, artifact):
        shared = SharedWeights.publish(artifact, dtype="float32")
        try:
            assert shared.dtype_name == "float32"
            for arr in shared.arrays()["state"].values():
                assert arr.dtype == np.float32
            # Workers then build float32 engines with zero further casting.
            assert shared.build_engine().dtype == np.float32
        finally:
            shared.close(unlink=True)

    def test_manifest_is_json_serialisable(self, artifact):
        """The manifest crosses process boundaries; keep it plain data."""
        shared = SharedWeights.publish(artifact)
        try:
            round_tripped = json.loads(json.dumps(shared.manifest))
            assert round_tripped["shm_name"] == shared.manifest["shm_name"]
        finally:
            shared.close(unlink=True)


class TestRosterPoolParity:
    """Pool-vs-in-process bitwise parity for every seed-stackable roster.

    Single-graph submissions resolved before the next submit force the pool
    workers into the same one-graph micro-batches as ``predict([g])``, so
    unlike :class:`TestWorkerPool`'s coalesced case the outputs must be
    *bitwise* equal — and the ensemble must serve via the seed-stacked
    forward, with no sequential-fallback warning.
    """

    @pytest.mark.parametrize("spec", spec_params(STACKABLE_SPECS))
    def test_pool_matches_in_process_bitwise(self, spec, rng):
        model_spec = ModelSpec(spec.name, hidden_dim=8, num_layers=2, kwargs=dict(spec.build_kwargs))
        graphs = make_graphs(rng, 4)
        models = []
        for k in range(2):
            model = model_spec.build(SCHEMA)
            nudge = np.random.default_rng(k)
            for p in model.parameters():
                p.data = p.data + nudge.normal(scale=0.05, size=p.data.shape)
            models.append(warm_up(model, graphs))
        artifact = ModelArtifact.from_models(models, model_spec, SCHEMA)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            engine = InferenceEngine(artifact)
            assert engine._stacked is not None, f"{spec.name} did not seed-stack"
            direct = [engine.predict([g])[0] for g in graphs]
        with WorkerPool(artifact, num_workers=1, flush_timeout=0.005) as pool:
            served = [pool.submit(g).result(timeout=30.0) for g in graphs]
        for d, s in zip(direct, served):
            np.testing.assert_array_equal(s["output"], d.output)
            assert s["prediction"] == d.label


class TestWorkerPool:
    def test_pool_matches_in_process_engine(self, artifact, rng):
        graphs = make_graphs(rng, 6)
        direct = InferenceEngine(artifact).predict(graphs)
        with WorkerPool(artifact, num_workers=2, flush_timeout=0.005) as pool:
            handles = [pool.submit(g) for g in graphs]
            served = [h.result(timeout=30.0) for h in handles]
        for d, s in zip(direct, served):
            # Worker-side coalescing packs different micro-batches than one
            # big sync predict, so float accumulation may differ in the
            # last bits (same tolerance as the engine's budget-independence
            # test); identical packing is bitwise per TestSharedWeights.
            np.testing.assert_allclose(s["output"], d.output, rtol=0, atol=1e-10)
            assert s["prediction"] == d.label
            assert s["energy"] == pytest.approx(d.energy)

    def test_schema_validation_at_submit(self, artifact, rng):
        from repro.graph.data import Graph

        with WorkerPool(artifact, num_workers=1, flush_timeout=0.005) as pool:
            bad = Graph(x=np.ones((3, FEATURE_DIM + 2)), edge_index=np.zeros((2, 0), dtype=np.int64))
            with pytest.raises(ValueError, match="node features"):
                pool.submit(bad)

    def test_expired_deadline_sheds(self, artifact, rng):
        with WorkerPool(artifact, num_workers=1, flush_timeout=0.005) as pool:
            handle = pool.submit(make_graphs(rng, 1)[0], deadline=time.monotonic() - 1.0)
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=30.0)

    def test_bounded_queue_sheds_with_queue_full(self, artifact, rng):
        """Admission control, white-box: with no worker draining the queue,
        the queue_depth'th+1 submit must shed immediately (429 upstream)."""
        pool = WorkerPool(artifact, num_workers=1, queue_depth=2, flush_timeout=0.005)
        pool._started = True  # workers deliberately not spawned
        graphs = make_graphs(rng, 3)
        pool.submit(graphs[0])
        pool.submit(graphs[1])
        with pytest.raises(QueueFull, match="capacity"):
            pool.submit(graphs[2])
        pool.stop()

    def test_stop_resolves_unserved_handles(self, artifact, rng):
        pool = WorkerPool(artifact, num_workers=1, queue_depth=4, flush_timeout=0.005)
        pool._started = True  # no workers: nothing will ever serve these
        handles = [pool.submit(g) for g in make_graphs(rng, 3)]
        pool.stop()
        for handle in handles:
            with pytest.raises(EngineStopped):
                handle.result(timeout=1.0)

    def test_submit_after_stop_fails_fast(self, artifact, rng):
        pool = WorkerPool(artifact, num_workers=1, flush_timeout=0.005).start()
        pool.stop()
        with pytest.raises(EngineStopped):
            pool.submit(make_graphs(rng, 1)[0])

    def test_stop_is_idempotent(self, artifact):
        pool = WorkerPool(artifact, num_workers=1, flush_timeout=0.005).start()
        pool.stop()
        pool.stop()

    def test_drain_serves_already_queued_work(self, artifact, rng):
        """stop() is a drain: accepted requests finish, not EngineStopped."""
        graphs = make_graphs(rng, 8)
        pool = WorkerPool(artifact, num_workers=2, flush_timeout=0.005).start()
        handles = [pool.submit(g) for g in graphs]
        pool.stop()
        for handle in handles:
            assert handle.result(timeout=1.0)["prediction"] is not None

    def test_poisoned_request_answers_error_and_worker_survives(self, artifact, rng):
        """A graph that explodes inside the worker's forward answers with a
        worker-error result; the next request on the same worker serves."""
        graphs = make_graphs(rng, 2)
        poison = graphs[0]
        poison.x = np.full_like(poison.x, np.nan)
        # NaN features pass schema validation but let us verify the pool
        # still answers; a genuinely raising forward is covered by the
        # engine-level poisoned-batch test (workers run the same engine).
        with WorkerPool(artifact, num_workers=1, flush_timeout=0.005) as pool:
            first = pool.submit(poison).result(timeout=30.0)
            assert first["prediction"] is not None  # NaN propagates, worker lives
            second = pool.submit(graphs[1]).result(timeout=30.0)
            assert second["prediction"] in range(OUT_DIM)

    def test_worker_crash_respawns_and_pool_keeps_serving(self, artifact, rng):
        """SIGKILL a worker: the supervisor respawns it against the same
        shared segment and later requests serve (pre-supervision: the
        first death wedged the pool in a permanent EngineStopped)."""
        pool = WorkerPool(
            artifact, num_workers=1, flush_timeout=0.005, retry_limit=3,
            respawn_policy=RespawnPolicy(backoff_base=0.01, jitter=0.0),
        ).start()
        try:
            # Let the worker finish starting, then take it down.
            pool.submit(make_graphs(rng, 1)[0]).result(timeout=30.0)
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            result = pool.submit(make_graphs(rng, 1)[0]).result(timeout=30.0)
            assert result["prediction"] in range(OUT_DIM)
            snap = pool.stats_snapshot()
            assert snap["supervisor"]["restarts_total"] >= 1
            assert pool.health()["status"] in ("ok", "degraded")
            new_pid = pool.worker_pids()
            assert new_pid and new_pid != [pid]
        finally:
            pool.stop()

    def test_crash_loop_abandons_slot_and_pool_reports_down(self, artifact, rng):
        """Repeated fast crashes exhaust the respawn budget: the slot is
        abandoned, outstanding handles fail (never strand), and the pool
        refuses new work with the outage recorded."""
        pool = WorkerPool(
            artifact, num_workers=1, flush_timeout=0.005, retry_limit=1,
            respawn_policy=RespawnPolicy(
                backoff_base=0.01, backoff_max=0.05, max_fast_crashes=2, jitter=0.0,
            ),
        ).start()
        try:
            pool.submit(make_graphs(rng, 1)[0]).result(timeout=30.0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                for pid in pool.worker_pids():
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                if pool.health()["status"] == "unhealthy":
                    break
                time.sleep(0.02)
            assert pool.health()["status"] == "unhealthy"
            with pytest.raises(EngineStopped, match="down|abandoned|serving"):
                for _ in range(50):  # submits until the down event lands
                    handle = pool.submit(make_graphs(rng, 1)[0])
                    with pytest.raises((EngineStopped, DeadlineExceeded, TimeoutError)):
                        handle.result(timeout=2.0)
        finally:
            pool.stop()

    def test_worker_memory_is_shared_not_copied(self, artifact, rng):
        """The weight bank shows up as shared pages, not per-worker copies.

        With fork + shared memory a worker's *private* RSS stays small;
        the weights live in the segment every worker maps.  (On this
        scale the weights are tiny; the structural assertion is that
        smaps accounting attributes them as shared.)
        """
        with WorkerPool(artifact, num_workers=2, flush_timeout=0.005) as pool:
            pool.submit(make_graphs(rng, 1)[0]).result(timeout=30.0)
            memories = [process_memory(pid) for pid in pool.worker_pids()]
        if not memories or not memories[0]:
            pytest.skip("no /proc/<pid>/smaps_rollup on this platform")
        for memory in memories:
            assert memory["shared"] > 0
            assert memory["rss"] == pytest.approx(memory["shared"] + memory["private"], rel=0.05)

    def test_invalid_configuration_rejected(self, artifact):
        with pytest.raises(ValueError, match="num_workers"):
            WorkerPool(artifact, num_workers=0)
        with pytest.raises(ValueError, match="queue_depth"):
            WorkerPool(artifact, num_workers=1, queue_depth=0)
