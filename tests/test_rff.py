"""Random Fourier features: shapes, modes, and statistical behaviour."""

import numpy as np
import pytest

from repro.core import RandomFourierFeatures


@pytest.fixture
def rng():
    return np.random.default_rng(43)


class TestShapes:
    def test_output_shape(self, rng):
        rff = RandomFourierFeatures(num_functions=3, rng=rng)
        out = rff(rng.normal(size=(10, 4)))
        assert out.shape == (10, 4, 3)

    def test_rejects_non_matrix(self, rng):
        rff = RandomFourierFeatures(rng=rng)
        with pytest.raises(ValueError):
            rff(np.zeros(5))

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            RandomFourierFeatures(num_functions=0)
        with pytest.raises(ValueError):
            RandomFourierFeatures(fraction=0.0)
        with pytest.raises(ValueError):
            RandomFourierFeatures(fraction=1.5)


class TestModes:
    def test_linear_mode_is_identity(self, rng):
        rff = RandomFourierFeatures(linear=True, rng=rng)
        z = rng.normal(size=(6, 3))
        out = rff(z)
        np.testing.assert_allclose(out[:, :, 0], z)

    def test_fraction_selects_subset(self, rng):
        rff = RandomFourierFeatures(fraction=0.5, rng=rng)
        out = rff(rng.normal(size=(8, 10)))
        assert out.shape[1] == 5

    def test_fraction_minimum_two_dims(self, rng):
        rff = RandomFourierFeatures(fraction=0.01, rng=rng)
        cols = rff.select_dimensions(10)
        assert len(cols) == 2

    def test_full_fraction_keeps_all(self, rng):
        rff = RandomFourierFeatures(fraction=1.0, rng=rng)
        np.testing.assert_array_equal(rff.select_dimensions(7), np.arange(7))


class TestStatistics:
    def test_bounded_by_sqrt2(self, rng):
        rff = RandomFourierFeatures(num_functions=4, rng=rng)
        out = rff(rng.normal(size=(50, 3)))
        assert np.abs(out).max() <= np.sqrt(2.0) + 1e-12

    def test_resampled_each_call(self, rng):
        rff = RandomFourierFeatures(rng=rng)
        z = rng.normal(size=(10, 2))
        assert not np.allclose(rff(z), rff(z))

    def test_deterministic_given_seed(self):
        z = np.random.default_rng(0).normal(size=(10, 2))
        a = RandomFourierFeatures(rng=np.random.default_rng(5))(z)
        b = RandomFourierFeatures(rng=np.random.default_rng(5))(z)
        np.testing.assert_allclose(a, b)

    def test_kernel_approximation(self, rng):
        """E[h(x)h(y)] over draws approximates the Gaussian kernel."""
        x, y = 0.3, 1.1
        z = np.array([[x], [y]])
        products = []
        for _ in range(4000):
            feats = RandomFourierFeatures(num_functions=1, rng=rng)(z)
            products.append(feats[0, 0, 0] * feats[1, 0, 0])
        estimate = np.mean(products)
        expected = np.exp(-((x - y) ** 2) / 2.0)
        assert estimate == pytest.approx(expected, abs=0.05)
