"""The compute-dtype policy: float64 default, float32 serving mode.

Covers the policy surface (``compute_dtype`` coercion context,
``Module.to_dtype`` propagation, ``ModelArtifact`` dtype field/cast,
``InferenceEngine(dtype=...)`` and the dtype-derived ``max_nodes``
default) plus the documented float32-vs-float64 tolerance bounds across
the full encoder roster, seed ensembles and energy OOD scores (see
docs/ARCHITECTURE.md "Dtype policy").
"""

import numpy as np
import pytest

from encoder_specs import ENCODER_SPECS, spec_params
from repro.autograd import (
    Tensor,
    as_compute_dtype,
    compute_dtype,
    get_default_dtype,
    inference_mode,
    set_default_dtype,
)
from repro.encoders import build_model
from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.nn.layers import BatchNorm1d, Linear
from repro.serve import FeatureSchema, InferenceEngine, ModelArtifact, ModelSpec
from repro.serve.batcher import default_max_nodes

#: Documented per-encoder relative output tolerance of the float32 mode
#: (max |logit32 - logit64| / max |logit64|).  Untrained sum-readout
#: stacks amplify node-count roundoff, hence the loose-but-bounded 1e-4.
FLOAT32_RELATIVE_TOLERANCE = 1e-4

_SCHEMA = FeatureSchema(feature_dim=6, out_dim=3, task_type="multiclass", num_classes=3)


def _graphs(count, nodes=40, seed=0, features=6):
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(count):
        g = erdos_renyi(nodes, 0.08, rng)
        g.x = rng.normal(size=(g.num_nodes, features))
        graphs.append(g)
    return graphs


def _model(name, seed=0, **kwargs):
    kwargs.setdefault("hidden_dim", 16)
    kwargs.setdefault("num_layers", 2)
    return build_model(name, 6, 3, np.random.default_rng(seed), **kwargs)


class TestDtypePolicy:
    def test_as_compute_dtype(self):
        assert as_compute_dtype("float32") == np.float32
        assert as_compute_dtype(np.float64) == np.float64
        assert as_compute_dtype(np.dtype(np.float32)) == np.float32
        assert as_compute_dtype(None) == np.float64
        with pytest.raises(ValueError, match="float64 or float32"):
            as_compute_dtype(np.int64)
        with pytest.raises(ValueError, match="float64 or float32"):
            as_compute_dtype("float16")

    def test_default_dtype_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor(np.ones(3, dtype=np.float32)).dtype == np.float64

    def test_compute_dtype_context(self):
        with compute_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
            with compute_dtype("float64"):
                assert Tensor([1.0]).dtype == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_set_default_dtype_thread_local(self):
        set_default_dtype(np.float32)
        try:
            assert Tensor([0.5]).dtype == np.float32
        finally:
            set_default_dtype(np.float64)
        assert Tensor([0.5]).dtype == np.float64

    def test_float32_ops_stay_float32(self):
        with compute_dtype(np.float32):
            a = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
            b = Tensor(np.random.default_rng(1).normal(size=(3, 2)))
            out = ((a @ b) + 1.0).relu()
            assert out.dtype == np.float32

    def test_float32_backward(self):
        with compute_dtype(np.float32):
            x = Tensor(np.random.default_rng(0).normal(size=(5, 3)), requires_grad=True)
            loss = ((x * x).sum())
            loss.backward()
            assert x.grad.dtype == np.float32


class TestModuleToDtype:
    def test_casts_parameters_and_buffers(self):
        layer = BatchNorm1d(4)
        layer.to_dtype("float32")
        assert layer.gamma.dtype == np.float32
        assert layer.running_mean.dtype == np.float32
        assert layer.param_dtype == np.float32
        layer.to_dtype(np.float64)
        assert layer.gamma.dtype == np.float64

    def test_model_roundtrip_values(self):
        model = _model("gin")
        before = {n: p.copy() for n, p in model.state_dict().items()}
        model.to_dtype(np.float32).to_dtype(np.float64)
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(value, before[name], rtol=1e-7)

    def test_linear_forward_dtype(self):
        layer = Linear(3, 2, np.random.default_rng(0)).to_dtype("float32")
        with inference_mode(), compute_dtype(np.float32):
            out = layer(Tensor(np.random.default_rng(1).normal(size=(5, 3))))
        assert out.dtype == np.float32


class TestEncoderRosterTolerance:
    @pytest.mark.parametrize("spec", spec_params(ENCODER_SPECS))
    def test_float32_outputs_close_to_float64(self, spec):
        name = spec.name
        batch = GraphBatch.from_graphs(_graphs(3, seed=2))
        model64 = spec.build(6, 3, np.random.default_rng(0), hidden_dim=16).eval()
        model32 = spec.build(6, 3, np.random.default_rng(0), hidden_dim=16).eval().to_dtype(np.float32)
        with inference_mode():
            out64 = model64(batch).data
        with inference_mode(), compute_dtype(np.float32):
            out32 = model32(batch).data
        assert out32.dtype == np.float32
        scale = np.abs(out64).max() + 1e-12
        rel = np.abs(out32.astype(np.float64) - out64).max() / scale
        assert rel < FLOAT32_RELATIVE_TOLERANCE, f"{name}: rel={rel:.2e}"


class TestEngineDtype:
    def test_auto_max_nodes_derivation(self):
        assert default_max_nodes(np.float64) == 2048
        assert default_max_nodes("float32") == 4096
        assert InferenceEngine.from_models([_model("gin").eval()], _SCHEMA).budget.max_nodes == 2048
        engine32 = InferenceEngine.from_models([_model("gin").eval()], _SCHEMA, dtype="float32")
        assert engine32.budget.max_nodes == 4096
        assert engine32.dtype == np.float32

    def test_explicit_max_nodes_respected(self):
        engine = InferenceEngine.from_models(
            [_model("gin").eval()], _SCHEMA, dtype="float32", max_nodes=123
        )
        assert engine.budget.max_nodes == 123
        unbounded = InferenceEngine.from_models([_model("gin").eval()], _SCHEMA, max_nodes=None)
        assert unbounded.budget.max_nodes is None
        with pytest.raises(ValueError, match="max_nodes"):
            InferenceEngine.from_models([_model("gin").eval()], _SCHEMA, max_nodes="huge")

    def test_float32_predictions_close(self):
        graphs = _graphs(6, seed=3)
        e64 = InferenceEngine.from_models([_model("gin").eval()], _SCHEMA)
        e32 = InferenceEngine.from_models([_model("gin").eval()], _SCHEMA, dtype="float32")
        p64 = e64.predict(graphs)
        p32 = e32.predict(graphs)
        for a, b in zip(p32, p64):
            scale = np.abs(b.output).max() + 1e-12
            assert np.abs(a.output.astype(np.float64) - b.output).max() / scale < FLOAT32_RELATIVE_TOLERANCE
            assert a.label == b.label
            assert abs(a.energy - b.energy) / (abs(b.energy) + 1e-9) < 1e-3

    def test_float32_seed_ensemble_and_energy(self):
        graphs = _graphs(5, seed=4)
        models64 = [_model("gin", seed=s).eval() for s in range(3)]
        models32 = [_model("gin", seed=s).eval() for s in range(3)]
        e64 = InferenceEngine.from_models(models64, _SCHEMA)
        e32 = InferenceEngine.from_models(models32, _SCHEMA, dtype="float32")
        assert e32._stacked is not None and e32._stacked.param_dtype == np.float32
        s64 = e64.energy_scores(graphs)
        s32 = e32.energy_scores(graphs)
        np.testing.assert_allclose(s32, s64, rtol=1e-3, atol=1e-4)
        calibration = e32.calibrate(graphs, quantile=0.8)
        assert np.isfinite(calibration.threshold)

    def test_float32_unstackable_roster_falls_back(self):
        from repro.nn import layers as nn_layers

        nn_layers._SEQUENTIAL_FALLBACK_WARNED.clear()
        graphs = _graphs(3, seed=5)
        models = [_model("factorgcn", seed=s).eval() for s in range(2)]
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = InferenceEngine.from_models(models, _SCHEMA, dtype="float32")
        predictions = engine.predict(graphs)
        assert all(np.isfinite(p.output).all() for p in predictions)
        assert predictions[0].output.dtype == np.float32


class TestArtifactDtype:
    def _artifact(self):
        model = _model("gin")
        spec = ModelSpec(method="gin", hidden_dim=16, num_layers=2)
        return ModelArtifact.from_model(model, spec, _SCHEMA)

    def test_default_dtype_field(self):
        artifact = self._artifact()
        assert artifact.dtype == np.float64

    def test_astype_roundtrip(self, tmp_path):
        artifact = self._artifact().astype("float32")
        assert artifact.dtype == np.float32
        path = artifact.save(tmp_path / "model32.npz")
        loaded = ModelArtifact.load(path)
        assert loaded.dtype == np.float32
        models = loaded.build_models()
        assert models[0].param_dtype == np.float32

    def test_engine_defaults_to_artifact_dtype(self, tmp_path):
        artifact = self._artifact().astype("float32")
        path = artifact.save(tmp_path / "model32.npz")
        engine = InferenceEngine(ModelArtifact.load(path))
        assert engine.dtype == np.float32
        assert engine.budget.max_nodes == 4096
        # Explicit dtype overrides the stored precision.
        engine64 = InferenceEngine(ModelArtifact.load(path), dtype="float64")
        assert engine64.dtype == np.float64
        assert engine64.models[0].param_dtype == np.float64

    def test_float32_artifact_predictions_close(self, tmp_path):
        graphs = _graphs(4, seed=6)
        model = _model("gin").eval()
        spec = ModelSpec(method="gin", hidden_dim=16, num_layers=2)
        artifact = ModelArtifact.from_model(model, spec, _SCHEMA)
        p64 = InferenceEngine(artifact).predict(graphs)
        path = artifact.astype("float32").save(tmp_path / "m.npz")
        p32 = InferenceEngine(ModelArtifact.load(path)).predict(graphs)
        for a, b in zip(p32, p64):
            scale = np.abs(b.output).max() + 1e-12
            assert np.abs(a.output.astype(np.float64) - b.output).max() / scale < FLOAT32_RELATIVE_TOLERANCE

    def test_file_size_halves(self, tmp_path):
        artifact = self._artifact()
        p64 = artifact.save(tmp_path / "m64.npz")
        p32 = artifact.astype("float32").save(tmp_path / "m32.npz")
        import os

        assert os.path.getsize(p32) < 0.75 * os.path.getsize(p64)


class TestServeCliDtype:
    def test_dtype_flag(self, tmp_path, capsys):
        import json

        from repro.serve.__main__ import main as serve_main

        model = _model("gin").eval()
        spec = ModelSpec(method="gin", hidden_dim=16, num_layers=2)
        path = ModelArtifact.from_model(model, spec, _SCHEMA).save(tmp_path / "m.npz")
        graphs = _graphs(2, seed=7)
        requests = [
            {"x": g.x.tolist(), "edge_index": g.edge_index.tolist()} for g in graphs
        ]
        request_path = tmp_path / "req.json"
        request_path.write_text(json.dumps(requests))
        code = serve_main([str(path), "--input", str(request_path), "--dtype", "float32"])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 2
        assert all(np.isfinite(l["energy"]) for l in lines)
