"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.core.decorrelation import project_weights
from repro.core.hsic import block_offdiagonal_mask, pairwise_decorrelation_loss
from repro.graph.utils import undirected_edge_index, coalesce_edges, is_undirected, degrees, count_triangles
from repro.training.metrics import roc_auc

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestSegmentProperties:
    @given(
        data=arrays(np.float64, shape=st.tuples(st.integers(1, 20), st.integers(1, 4)), elements=finite_floats),
        num_segments=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_sum_conserves_mass(self, data, num_segments, seed):
        """Total mass is preserved: sum of segment sums == sum of input."""
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, num_segments, size=data.shape[0])
        out = F.segment_sum(Tensor(data), ids, num_segments).data
        np.testing.assert_allclose(out.sum(), data.sum(), atol=1e-8 * max(1, abs(data).sum()))

    @given(
        data=arrays(np.float64, shape=st.tuples(st.integers(1, 20), st.integers(1, 3)), elements=finite_floats),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_max_bounded_by_global_max(self, data, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 3, size=data.shape[0])
        out = F.segment_max(Tensor(data), ids, 3, empty_value=data.min()).data
        assert out.max() <= data.max() + 1e-12

    @given(
        data=arrays(np.float64, shape=st.tuples(st.integers(2, 16),), elements=finite_floats),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_softmax_is_distribution_per_segment(self, data, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 3, size=data.shape[0])
        out = F.segment_softmax(Tensor(data), ids, 3).data
        sums = np.bincount(ids, weights=out, minlength=3)
        present = np.bincount(ids, minlength=3) > 0
        np.testing.assert_allclose(sums[present], 1.0, atol=1e-6)


class TestWeightProjectionProperties:
    @given(
        weights=arrays(np.float64, shape=st.integers(2, 50), elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_projection_invariants(self, weights):
        out = project_weights(weights)
        assert (out >= 0).all()
        np.testing.assert_allclose(out.mean(), 1.0, atol=1e-9)
        # Idempotence.
        np.testing.assert_allclose(project_weights(out), out, atol=1e-9)

    @given(
        weights=arrays(
            np.float64, shape=st.integers(2, 30), elements=st.floats(0.01, 100, allow_nan=False)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_projection_never_inverts_order(self, weights):
        # Monotone, not strictly order-preserving: the rescale can collapse
        # ULP-close inputs into exact ties (multiplying by one positive
        # scalar is IEEE-monotone but not injective), which legitimately
        # perturbs a stable argsort's tie-breaking — inversions, however,
        # can never happen.
        out = project_weights(weights)
        order = np.argsort(weights, kind="stable")
        assert (np.diff(out[order]) >= 0).all()

    @given(
        weights=arrays(
            np.float64, shape=st.integers(2, 30), elements=st.floats(1.0, 100, allow_nan=False)
        ),
        ceiling=st.floats(1.0, 50.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_ceiling_respected(self, weights, ceiling):
        """With clipped mass >= n the rescale shrinks, so the cap survives it."""
        out = project_weights(weights, ceiling=ceiling)
        assert out.max() <= ceiling + 1e-9
        np.testing.assert_allclose(out.mean(), 1.0, atol=1e-9)
        # Idempotent under the same ceiling once the constraint set is hit.
        np.testing.assert_allclose(project_weights(out, ceiling=ceiling), out, atol=1e-9)

    @given(
        weights=arrays(
            np.float64, shape=st.integers(2, 30), elements=st.floats(-100, 0.0, allow_nan=False)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_degenerate_input_resets_to_uniform(self, weights):
        """All-nonpositive weights clip to zero mass and reset to uniform."""
        np.testing.assert_allclose(project_weights(weights), 1.0)


class TestDecorrelationProperties:
    @given(
        n=st.integers(4, 30), d=st.integers(2, 5), q=st.integers(1, 3), seed=st.integers(0, 10_000)
    )
    @settings(max_examples=30, deadline=None)
    def test_loss_nonnegative(self, n, d, q, seed):
        rng = np.random.default_rng(seed)
        feats = rng.normal(size=(n, d, q))
        loss = float(pairwise_decorrelation_loss(feats, Tensor(np.ones(n))).data)
        assert loss >= 0.0

    @given(d=st.integers(2, 6), q=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_mask_symmetric_zero_diag_blocks(self, d, q):
        mask = block_offdiagonal_mask(d, q)
        np.testing.assert_array_equal(mask, mask.T)
        for i in range(d):
            block = mask[i * q : (i + 1) * q, i * q : (i + 1) * q]
            np.testing.assert_array_equal(block, 0.0)


class TestFusedParityProperties:
    """The closed-form engine tracks the taped loss over random instances."""

    @given(
        n=st.integers(4, 24), d=st.integers(2, 5), q=st.integers(1, 3), seed=st.integers(0, 10_000)
    )
    @settings(max_examples=25, deadline=None)
    def test_fused_loss_and_grad_match_tape(self, n, d, q, seed):
        from repro.core.fused import FusedDecorrelation

        rng = np.random.default_rng(seed)
        feats = rng.normal(size=(n, d, q))
        w = Tensor(rng.uniform(0.2, 2.0, size=n), requires_grad=True)
        ref = pairwise_decorrelation_loss(feats, w)
        ref.backward()
        for mode in ("primal", "dual"):
            loss, grad = FusedDecorrelation(feats, mode=mode).loss_and_grad(w.data)
            np.testing.assert_allclose(loss, float(ref.data), atol=1e-8)
            np.testing.assert_allclose(grad, w.grad, atol=1e-8)


class TestGraphProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=0, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_undirected_edge_index_always_symmetric(self, pairs):
        pairs = [(u, v) for u, v in pairs if u != v]
        edges = undirected_edge_index(pairs)
        assert is_undirected(edges)
        assert edges.shape[1] == 2 * len(pairs)

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_coalesce_idempotent_and_loop_free(self, pairs):
        edges = np.asarray(pairs, dtype=np.int64).T
        once = coalesce_edges(edges)
        twice = coalesce_edges(once)
        np.testing.assert_array_equal(once, twice)
        if once.size:
            assert (once[0] != once[1]).all()

    @given(seed=st.integers(0, 10_000), n=st.integers(3, 15))
    @settings(max_examples=30, deadline=None)
    def test_degree_sum_equals_edge_count(self, seed, n):
        rng = np.random.default_rng(seed)
        mask = np.triu(rng.random((n, n)) < 0.4, k=1)
        src, dst = np.nonzero(mask)
        edges = undirected_edge_index(list(zip(src.tolist(), dst.tolist())))
        assert degrees(edges, n).sum() == edges.shape[1]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_triangle_count_matches_networkx(self, seed):
        import networkx as nx

        g = nx.gnp_random_graph(10, 0.4, seed=seed)
        from repro.graph.utils import from_networkx

        graph = from_networkx(g)
        assert count_triangles(graph.edge_index, 10) == sum(nx.triangles(g).values()) // 3


class TestMetricProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 60))
    @settings(max_examples=40, deadline=None)
    def test_auc_complement_symmetry(self, seed, n):
        """Flipping labels maps AUC to 1 - AUC."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        labels = rng.integers(0, 2, size=n)
        if len(np.unique(labels)) < 2:
            labels[0], labels[1] = 0, 1
        auc = roc_auc(scores, labels)
        flipped = roc_auc(scores, 1 - labels)
        assert auc == round(1.0 - flipped, 12) or abs(auc + flipped - 1.0) < 1e-9

    @given(seed=st.integers(0, 10_000), shift=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_auc_monotone_invariance(self, seed, shift):
        """AUC is invariant to strictly monotone score transforms."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=30)
        labels = rng.integers(0, 2, size=30)
        if len(np.unique(labels)) < 2:
            labels[0], labels[1] = 0, 1
        a = roc_auc(scores, labels)
        b = roc_auc(np.exp(shift * scores), labels)
        assert a == round(b, 12) or abs(a - b) < 1e-9


class TestSeedAttentionPrimitiveProperties:
    """Seed-batched attention primitives vs K sequential runs — bitwise.

    The seed-stacked GAT path (repro.encoders.attention.SeedGATConv) is
    built from seed_gather / seed_segment_max / seed_segment_softmax; its
    bitwise-parity contract reduces to these primitives matching their
    per-seed counterparts exactly, including the awkward regimes: empty
    edge sets, single-node (singleton) segments, hugely negative logits
    and the K=1 degenerate stack.
    """

    # Attention logits after leaky_relu can be arbitrarily negative; the
    # shifted-exp softmax must stay exact (and finite) down to -1e30.
    logit_floats = st.floats(min_value=-1e30, max_value=100, allow_nan=False)

    @given(
        num_seeds=st.integers(1, 4),
        num_elements=st.integers(0, 20),
        num_segments=st.integers(1, 25),
        seed=st.integers(0, 10_000),
        low=logit_floats,
    )
    @settings(max_examples=60, deadline=None)
    def test_seed_segment_softmax_matches_sequential_bitwise(
        self, num_seeds, num_elements, num_segments, seed, low
    ):
        rng = np.random.default_rng(seed)
        ids = np.sort(rng.integers(0, num_segments, size=num_elements))
        data = rng.normal(size=(num_seeds, num_elements))
        if num_elements:
            data[rng.integers(0, num_seeds), rng.integers(0, num_elements)] = low
        out = F.seed_segment_softmax(Tensor(data), ids, num_segments).data
        assert np.isfinite(out).all()
        for k in range(num_seeds):
            ref = F.segment_softmax(Tensor(data[k]), ids, num_segments).data
            np.testing.assert_array_equal(out[k], ref, err_msg=f"seed {k}")

    @given(
        num_seeds=st.integers(1, 4),
        num_elements=st.integers(0, 20),
        num_segments=st.integers(1, 25),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_seed_segment_max_matches_sequential_bitwise(
        self, num_seeds, num_elements, num_segments, seed
    ):
        rng = np.random.default_rng(seed)
        ids = np.sort(rng.integers(0, num_segments, size=num_elements))
        data = rng.normal(size=(num_seeds, num_elements)) * 10.0
        out = F.seed_segment_max(Tensor(data), ids, num_segments, empty_value=-1.5).data
        for k in range(num_seeds):
            ref = F.segment_max(Tensor(data[k]), ids, num_segments, empty_value=-1.5).data
            np.testing.assert_array_equal(out[k], ref, err_msg=f"seed {k}")

    @given(
        num_seeds=st.integers(1, 4),
        num_rows=st.integers(1, 12),
        num_gathered=st.integers(0, 20),
        per_seed_index=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_seed_gather_matches_sequential_bitwise(
        self, num_seeds, num_rows, num_gathered, per_seed_index, seed
    ):
        """Shared (m,) and per-seed (K, m) gathers both equal x[k][index_k],
        forward and backward."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(num_seeds, num_rows, 3))
        if per_seed_index:
            index = rng.integers(0, num_rows, size=(num_seeds, num_gathered))
        else:
            index = rng.integers(0, num_rows, size=num_gathered)
        x = Tensor(data, requires_grad=True)
        out = F.seed_gather(x, index)
        upstream = rng.normal(size=out.shape)
        out.backward(upstream)
        for k in range(num_seeds):
            index_k = index[k] if per_seed_index else index
            ref = Tensor(data[k], requires_grad=True)
            gathered = ref[index_k] if num_gathered else ref * 0.0
            np.testing.assert_array_equal(
                out.data[k], data[k][index_k], err_msg=f"seed {k} forward"
            )
            if num_gathered:
                gathered.backward(upstream[k])
                np.testing.assert_array_equal(x.grad[k], ref.grad, err_msg=f"seed {k} grad")
            else:
                np.testing.assert_array_equal(x.grad[k], np.zeros_like(data[k]))
