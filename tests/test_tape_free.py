"""Tape-free inference mode: bitwise parity with taped forwards, clear errors.

Covers the serving-path contract (docs/ARCHITECTURE.md "Inference and
serving"): every operation used in encoder forwards must produce *bitwise*
identical outputs with and without the tape (the fast paths re-express the
same arithmetic, they never reorder it), and calling ``backward()`` on a
tensor computed under ``no_grad()``/``inference_mode()`` must raise a
clear error instead of silently doing nothing.
"""

import numpy as np
import pytest

from encoder_specs import ENCODER_SPECS, STACKABLE_SPECS, spec_params
from repro.autograd import Tensor, functional as F, inference_mode, no_grad, is_grad_enabled
from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.nn.layers import BatchNorm1d, Linear, SeedBatchNorm1d, SeedLinear, stack_seed_modules


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _tensors(seed: int = 7):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    w = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    ids = np.array([0, 0, 1, 2, 2, 1])
    return a, b, w, ids


# Every tensor/functional op the encoder zoo's forwards touch.
_OP_CASES = {
    "add": lambda a, b, w, ids: a + b,
    "radd_scalar": lambda a, b, w, ids: 1.5 + a,
    "sub": lambda a, b, w, ids: a - b,
    "neg": lambda a, b, w, ids: -a,
    "mul": lambda a, b, w, ids: a * b,
    "div": lambda a, b, w, ids: a / (b * b + 1.0),
    "pow": lambda a, b, w, ids: a**2,
    "matmul": lambda a, b, w, ids: a @ w,
    "exp": lambda a, b, w, ids: a.exp(),
    "log": lambda a, b, w, ids: (a * a + 1.0).log(),
    "sqrt": lambda a, b, w, ids: (a * a + 1e-3).sqrt(),
    "abs": lambda a, b, w, ids: a.abs(),
    "tanh": lambda a, b, w, ids: a.tanh(),
    "sigmoid": lambda a, b, w, ids: a.sigmoid(),
    "relu": lambda a, b, w, ids: a.relu(),
    "leaky_relu": lambda a, b, w, ids: a.leaky_relu(0.1),
    "cos": lambda a, b, w, ids: a.cos(),
    "sin": lambda a, b, w, ids: a.sin(),
    "clip": lambda a, b, w, ids: a.clip(-0.5, 0.5),
    "softplus": lambda a, b, w, ids: a.softplus(),
    "sum": lambda a, b, w, ids: a.sum(axis=0),
    "mean": lambda a, b, w, ids: a.mean(axis=1, keepdims=True),
    "var": lambda a, b, w, ids: a.var(axis=0),
    "std": lambda a, b, w, ids: a.std(axis=0),
    "max": lambda a, b, w, ids: a.max(axis=0),
    "min": lambda a, b, w, ids: a.min(axis=1),
    "reshape": lambda a, b, w, ids: a.reshape(4, 6),
    "transpose": lambda a, b, w, ids: a.T,
    "squeeze": lambda a, b, w, ids: a.unsqueeze(0).squeeze(0),
    "unsqueeze": lambda a, b, w, ids: a.unsqueeze(1),
    "broadcast_to": lambda a, b, w, ids: a.unsqueeze(0).broadcast_to((2, 6, 4)),
    "getitem_rows": lambda a, b, w, ids: a[ids],
    "getitem_negative_rows": lambda a, b, w, ids: a[np.array([-1, 0, -2])],
    "getitem_slice": lambda a, b, w, ids: a[1:4],
    "index_add": lambda a, b, w, ids: a.index_add(ids, b),
    "concatenate": lambda a, b, w, ids: F.concatenate([a, b], axis=1),
    "stack": lambda a, b, w, ids: F.stack([a, b], axis=0),
    "where": lambda a, b, w, ids: F.where(a.data > 0, a, b),
    "maximum": lambda a, b, w, ids: F.maximum(a, b),
    "softmax": lambda a, b, w, ids: F.softmax(a, axis=1),
    "log_softmax": lambda a, b, w, ids: F.log_softmax(a, axis=1),
    "logsumexp": lambda a, b, w, ids: F.logsumexp(a, axis=1),
    "segment_sum": lambda a, b, w, ids: F.segment_sum(a, ids, 3),
    "segment_mean": lambda a, b, w, ids: F.segment_mean(a, ids, 3),
    "segment_max": lambda a, b, w, ids: F.segment_max(a, ids, 3),
    "segment_softmax": lambda a, b, w, ids: F.segment_softmax(a, ids, 3),
    "weighted_gram": lambda a, b, w, ids: F.weighted_gram(a, Tensor(np.abs(b.data[:, 0]) + 0.1, requires_grad=True)),
    "masked_frobenius": lambda a, b, w, ids: F.masked_frobenius(a @ w, np.ones((6, 3))),
    "seed_linear": lambda a, b, w, ids: F.seed_linear(a, Tensor(np.stack([w.data, w.data * 2]), requires_grad=True)),
    "seed_gather": lambda a, b, w, ids: F.seed_gather(F.stack([a, b], axis=0), ids),
    "seed_gather_per_seed": lambda a, b, w, ids: F.seed_gather(
        F.stack([a, b], axis=0), np.stack([ids, ids[::-1]])
    ),
    "seed_segment_sum": lambda a, b, w, ids: F.seed_segment_sum(F.stack([a, b], axis=0), ids, 3),
    "seed_segment_mean": lambda a, b, w, ids: F.seed_segment_mean(F.stack([a, b], axis=0), ids, 3),
    "seed_segment_max": lambda a, b, w, ids: F.seed_segment_max(F.stack([a, b], axis=0), ids, 4),
    "seed_segment_softmax": lambda a, b, w, ids: F.seed_segment_softmax(
        F.stack([a, b], axis=0), ids, 3
    ),
}


class TestOpParity:
    @pytest.mark.parametrize("name", sorted(_OP_CASES))
    def test_bitwise_equal_with_and_without_tape(self, name, rng):
        op = _OP_CASES[name]
        taped = op(*_tensors())
        with inference_mode():
            tape_free = op(*_tensors())
        np.testing.assert_array_equal(taped.data, tape_free.data)
        assert not tape_free.requires_grad
        assert not tape_free._parents

    @pytest.mark.parametrize("name", sorted(_OP_CASES))
    def test_no_grad_matches_inference_mode(self, name, rng):
        op = _OP_CASES[name]
        with no_grad():
            a = op(*_tensors())
        with inference_mode():
            b = op(*_tensors())
        np.testing.assert_array_equal(a.data, b.data)

    def test_getitem_out_of_bounds_still_raises(self):
        a, *_ = _tensors()
        with inference_mode():
            with pytest.raises(IndexError):
                a[np.array([0, 6])]
            with pytest.raises(IndexError):
                a[np.array([-7])]


class TestLayerParity:
    def test_linear_fast_path(self, rng):
        layer = Linear(4, 3, rng)
        x = Tensor(rng.normal(size=(5, 4)))
        taped = layer(x)
        with inference_mode():
            fast = layer(x)
        np.testing.assert_array_equal(taped.data, fast.data)

    def test_batchnorm_eval_fast_path(self, rng):
        layer = BatchNorm1d(4)
        layer.running_mean = rng.normal(size=4)
        layer.running_var = np.abs(rng.normal(size=4)) + 0.5
        layer.gamma.data = rng.normal(size=4)
        layer.beta.data = rng.normal(size=4)
        layer.eval()
        x = Tensor(rng.normal(size=(5, 4)))
        taped = layer(x)
        with inference_mode():
            fast = layer(x)
        np.testing.assert_array_equal(taped.data, fast.data)

    def test_seed_layers_fast_path(self, rng):
        linear = SeedLinear(rng.normal(size=(2, 4, 3)), rng.normal(size=(2, 3)))
        norm = SeedBatchNorm1d(2, 3)
        norm.running_mean = rng.normal(size=(2, 3))
        norm.running_var = np.abs(rng.normal(size=(2, 3))) + 0.5
        norm.eval()
        x = Tensor(rng.normal(size=(5, 4)))
        taped = norm(linear(x))
        with inference_mode():
            fast = norm(linear(x))
        np.testing.assert_array_equal(taped.data, fast.data)


def _feature_batch(rng, count=4, feature_dim=5):
    graphs = []
    for _ in range(count):
        g = erdos_renyi(int(rng.integers(6, 12)), 0.5, rng)
        g.x = rng.normal(size=(g.num_nodes, feature_dim))
        graphs.append(g)
    return GraphBatch.from_graphs(graphs)


class TestEncoderParity:
    @pytest.mark.parametrize("spec", spec_params(ENCODER_SPECS))
    def test_full_forward_bitwise(self, spec, rng):
        """Every baseline's eval forward is bitwise identical tape-free."""
        batch = _feature_batch(rng)
        model = spec.build(5, 3, rng)
        model.eval()
        taped = model(batch)
        with inference_mode():
            tape_free = model(batch)
        np.testing.assert_array_equal(taped.data, tape_free.data)
        assert taped._parents and not tape_free._parents

    @pytest.mark.parametrize("spec", spec_params(STACKABLE_SPECS))
    def test_seed_stacked_forward_bitwise(self, spec, rng):
        """The serving path: a stacked roster's eval forward is bitwise
        identical with and without the tape."""
        batch = _feature_batch(rng)
        stacked = stack_seed_modules([spec.factory(5, 3)(s) for s in (0, 1, 2)])
        stacked.eval()
        taped = stacked(batch)
        with inference_mode():
            tape_free = stacked(batch)
        np.testing.assert_array_equal(taped.data, tape_free.data)
        assert not tape_free._parents


class TestBackwardError:
    def test_backward_raises_under_no_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            y = (x * x).sum()
        with pytest.raises(RuntimeError, match="no_grad"):
            y.backward()

    def test_backward_raises_under_inference_mode(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with inference_mode():
            loss = (x * 2.0).sum()
        with pytest.raises(RuntimeError, match="inference_mode"):
            loss.backward()

    def test_backward_raises_on_untracked_constant(self):
        with pytest.raises(RuntimeError, match="requires_grad"):
            (Tensor(2.0) * 3.0).backward()

    def test_leaf_backward_still_works(self):
        x = Tensor(3.0, requires_grad=True)
        x.backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_training_after_inference_mode_still_works(self):
        """The context restores cleanly; a later taped loss trains fine."""
        x = Tensor([1.0, 2.0], requires_grad=True)
        with inference_mode():
            assert not is_grad_enabled()
        assert is_grad_enabled()
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0])


class TestModeState:
    def test_inference_mode_nests_with_no_grad(self):
        with no_grad():
            with inference_mode():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_parameterlike_creation_inside_context_is_untracked(self):
        with inference_mode():
            t = Tensor(np.ones(3), requires_grad=True)
        assert not t.requires_grad
