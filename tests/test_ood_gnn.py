"""OOD-GNN model and the Algorithm-1 trainer."""

import numpy as np
import pytest

from repro.core import OODGNN, OODGNNConfig, OODGNNTrainer
from repro.graph.generators import erdos_renyi
from repro.graph.data import GraphBatch


@pytest.fixture
def rng():
    return np.random.default_rng(61)


def toy_dataset(rng, n=40):
    """Dense vs sparse graphs, a trivially learnable binary task."""
    graphs = []
    for i in range(n):
        label = i % 2
        p = 0.7 if label else 0.15
        g = erdos_renyi(int(rng.integers(6, 12)), p, rng)
        g.y = label
        graphs.append(g)
    return graphs


def tiny_config(**overrides):
    defaults = dict(
        hidden_dim=8,
        num_layers=2,
        epochs=4,
        batch_size=10,
        reweight_epochs=3,
        warmup_fraction=0.25,
    )
    defaults.update(overrides)
    return OODGNNConfig(**defaults)


class TestModel:
    def test_structure_matches_config(self, rng):
        cfg = tiny_config(hidden_dim=16, num_layers=3)
        model = OODGNN(4, 2, rng, config=cfg)
        assert len(model.encoder.convs) == 3
        assert model.encoder.out_dim == 16

    def test_custom_encoder_accepted(self, rng):
        from repro.encoders.base import StackedEncoder
        from repro.encoders.conv import GCNConv

        encoder = StackedEncoder(4, 8, 2, lambda i, o: GCNConv(i, o, rng), rng)
        model = OODGNN(4, 2, rng, config=tiny_config(), encoder=encoder)
        assert model.encoder is encoder

    def test_forward_shapes(self, rng):
        model = OODGNN(1, 3, rng, config=tiny_config())
        graphs = toy_dataset(rng, 6)
        batch = GraphBatch.from_graphs(graphs)
        assert model(batch).shape == (6, 3)
        assert model.representations(batch).shape == (6, 8)


class TestTrainer:
    def test_history_contents(self, rng):
        graphs = toy_dataset(rng)
        cfg = tiny_config()
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        history = trainer.fit(graphs)
        assert len(history.train_loss) == cfg.epochs
        assert len(history.decorrelation_loss) == cfg.epochs
        assert history.final_weights is not None
        assert history.final_weights.mean() == pytest.approx(1.0, abs=1e-6)

    def test_learns_toy_task(self, rng):
        graphs = toy_dataset(rng, 60)
        cfg = tiny_config(epochs=12)
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        trainer.fit(graphs)
        assert trainer.evaluate(graphs) > 0.8

    def test_warmup_weights_uniform(self, rng):
        graphs = toy_dataset(rng)
        cfg = tiny_config(epochs=2, warmup_fraction=1.0)  # never leaves warmup
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        history = trainer.fit(graphs)
        np.testing.assert_allclose(history.final_weights, 1.0)

    def test_validation_selects_best_state(self, rng):
        graphs = toy_dataset(rng, 40)
        cfg = tiny_config(epochs=6)
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        history = trainer.fit(graphs[:30], graphs[30:], eval_every=2)
        assert history.best_metric is not None
        assert history.best_state is not None
        assert len(history.valid_metric) == 3

    def test_global_memory_engaged(self, rng):
        graphs = toy_dataset(rng)
        cfg = tiny_config()
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        trainer.fit(graphs)
        assert trainer.estimator.initialised

    def test_zero_global_groups(self, rng):
        graphs = toy_dataset(rng)
        cfg = tiny_config(global_groups=0)
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        history = trainer.fit(graphs)
        assert not trainer.estimator.initialised
        assert np.isfinite(history.train_loss).all()

    def test_linear_decorrelation_variant(self, rng):
        graphs = toy_dataset(rng)
        cfg = tiny_config(linear_decorrelation=True)
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        history = trainer.fit(graphs)
        assert np.isfinite(history.train_loss).all()

    def test_regression_task(self, rng):
        graphs = toy_dataset(rng)
        for g in graphs:
            g.y = np.array([float(g.num_edges)])
        cfg = tiny_config()
        model = OODGNN(1, 1, rng, config=cfg)
        trainer = OODGNNTrainer(model, "regression", np.random.default_rng(1), metric="rmse", config=cfg)
        history = trainer.fit(graphs)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_weight_snapshots_cover_last_epoch(self, rng):
        graphs = toy_dataset(rng, 40)
        cfg = tiny_config(batch_size=10, epochs=3)
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        history = trainer.fit(graphs)
        assert len(history.weight_snapshots) == 4  # 40 graphs / batch 10
        assert history.final_weights.shape == (40,)
