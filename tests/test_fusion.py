"""Fused elementwise executor: chunked/eager parity and taped backward.

The contract of :mod:`repro.autograd.fusion` (see its module docstring and
docs/ARCHITECTURE.md "Fused elementwise execution"):

* chunked evaluation is **bitwise** equal to unchunked for every chunk size;
* a fused chain is **bitwise** equal to the eager op-by-op tensor chain,
  forward and backward, in float64;
* ``backward()`` through a fused tape node passes finite-difference
  gradient checks;
* the layer/encoder integrations (fused sequential walk, chunked
  batch-norm training forward, GIN combine) preserve their chains exactly.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, fusion
from repro.autograd.fusion import FusedExpr, chunk_ranges, chunk_rows_for, fuse
from repro.autograd.grad_check import check_gradients
from repro.encoders import build_model
from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.nn.layers import (
    MLP,
    BatchNorm1d,
    ReLU,
    SeedBatchNorm1d,
    _bn_train_forward,
    fused_sequential_forward,
)

CHUNK_SIZES = (None, 1, 2, 5, 16, 0)  # None = dtype-aware default, 0 = single chunk


def _bn_operands(h: int, seed: int = 3):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=h),
        np.abs(rng.normal(size=h)) + 0.5,
        rng.normal(size=h),
        rng.normal(size=h),
    )


def _chains(seed: int = 0):
    """(name, builder, eager) triples over a (n, h) leaf; builder takes Tensors."""
    rng = np.random.default_rng(seed)
    n, h = 23, 6
    x = rng.normal(size=(n, h))
    mean, std, gamma, beta = _bn_operands(h, seed + 1)
    col = rng.normal(size=(n, 1))
    full = rng.normal(size=(n, h))
    cases = [
        (
            "bn_affine_relu",
            lambda xt: fuse(xt).sub(mean).div(std).mul(gamma).add(beta).relu(),
            lambda xt: ((xt - Tensor(mean)) / Tensor(std) * Tensor(gamma) + Tensor(beta)).relu(),
        ),
        (
            "bias_relu",
            lambda xt: fuse(xt).add(beta).relu(),
            lambda xt: (xt + Tensor(beta)).relu(),
        ),
        (
            "scale_add_full",
            lambda xt: fuse(xt).mul(2.5).add(full),
            lambda xt: xt * 2.5 + Tensor(full),
        ),
        (
            "col_div_exp",
            lambda xt: fuse(xt).div(np.abs(col) + 1.0).exp(),
            lambda xt: (xt / Tensor(np.abs(col) + 1.0)).exp(),
        ),
        (
            "rsub_mul",
            lambda xt: fuse(xt).rsub(1.0).mul(gamma),
            lambda xt: (1.0 - xt) * Tensor(gamma),
        ),
        (
            "exp_mid_chain",
            lambda xt: fuse(xt).mul(0.25).exp().mul(gamma).add(beta),
            lambda xt: ((xt * 0.25).exp() * Tensor(gamma) + Tensor(beta)),
        ),
    ]
    return x, cases


class TestChunkedParity:
    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_chunked_equals_unchunked_bitwise(self, chunk_rows):
        x, cases = _chains()
        for name, builder, _eager in cases:
            reference = builder(Tensor(x)).eval(chunk_rows=0)
            chunked = builder(Tensor(x)).eval(chunk_rows=chunk_rows)
            np.testing.assert_array_equal(chunked, reference, err_msg=name)

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_seed_stack_chunked_parity(self, chunk_rows):
        rng = np.random.default_rng(7)
        k, n, h = 3, 29, 5
        x = rng.normal(size=(k, n, h))
        scale = rng.normal(size=(k, 1, 1))
        agg = rng.normal(size=(k, n, h))
        reference = fuse(x).mul(scale).add(agg).eval(chunk_rows=0)
        chunked = fuse(x).mul(scale).add(agg).eval(chunk_rows=chunk_rows)
        np.testing.assert_array_equal(chunked, reference)
        np.testing.assert_array_equal(reference, x * scale + agg)

    def test_one_dimensional_leaf(self):
        x = np.random.default_rng(0).normal(size=41)
        out = fuse(x).mul(3.0).relu().eval(chunk_rows=4)
        np.testing.assert_array_equal(out, np.maximum(x * 3.0, 0.0))

    def test_lower_rank_operand_spanning_chunk_axis(self):
        """An (n, 1) operand against a (K, n, h) leaf must slice per chunk.

        Regression: the operand broadcasts into the leaf via left-padding,
        so its *leading* axis lands on the chunk axis; without rank
        normalisation the whole operand collided with a partial chunk.
        """
        rng = np.random.default_rng(14)
        k, n, h = 2, 37, 4
        x = rng.normal(size=(k, n, h))
        col = rng.normal(size=(n, 1))
        reference = x + col
        for chunk_rows in (1, 5, 16, None, 0):
            out = fuse(x).add(col).eval(chunk_rows=chunk_rows)
            np.testing.assert_array_equal(out, reference)
        # And through the taped node with a tracked operand.
        from repro.autograd import Tensor

        col_t = Tensor(col, requires_grad=True)
        out = fuse(Tensor(x)).add(col_t).tensor(chunk_rows=7)
        out.sum().backward()
        np.testing.assert_allclose(col_t.grad, np.full((n, 1), float(k * h)), atol=0)

    def test_float32_chunked_parity(self):
        x, cases = _chains()
        x32 = x.astype(np.float32)
        for name, builder, _eager in cases:
            expr_ref = builder(Tensor._wrap(x32))
            reference = expr_ref.eval(chunk_rows=0)
            for chunk_rows in (1, 3, 8):
                out = builder(Tensor._wrap(x32)).eval(chunk_rows=chunk_rows)
                np.testing.assert_array_equal(out, reference, err_msg=name)


class TestFusedVsEager:
    def test_forward_bitwise(self):
        x, cases = _chains()
        for name, builder, eager in cases:
            fused = builder(Tensor(x)).eval()
            reference = eager(Tensor(x)).data
            np.testing.assert_array_equal(fused, reference, err_msg=name)

    def test_backward_bitwise(self):
        x, cases = _chains()
        for name, builder, eager in cases:
            xt_f = Tensor(x.copy(), requires_grad=True)
            out_f = builder(xt_f).tensor()
            (out_f * out_f).sum().backward()
            xt_e = Tensor(x.copy(), requires_grad=True)
            out_e = eager(xt_e)
            (out_e * out_e).sum().backward()
            np.testing.assert_array_equal(out_f.data, out_e.data, err_msg=name)
            np.testing.assert_array_equal(xt_f.grad, xt_e.grad, err_msg=name)

    def test_operand_gradients_bitwise(self):
        """Tracked operands (bias/gamma) get the eager chain's exact grads."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(13, 4))
        gamma = rng.normal(size=4)
        beta = rng.normal(size=4)

        g_f, b_f = Tensor(gamma.copy(), requires_grad=True), Tensor(beta.copy(), requires_grad=True)
        out_f = fuse(Tensor(x)).mul(g_f).add(b_f).relu().tensor()
        (out_f * out_f).sum().backward()

        g_e, b_e = Tensor(gamma.copy(), requires_grad=True), Tensor(beta.copy(), requires_grad=True)
        out_e = (Tensor(x) * g_e + b_e).relu()
        (out_e * out_e).sum().backward()

        np.testing.assert_array_equal(g_f.grad, g_e.grad)
        np.testing.assert_array_equal(b_f.grad, b_e.grad)

    def test_grad_check_through_fused_nodes(self):
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        gamma = Tensor(rng.normal(size=3), requires_grad=True)
        beta = Tensor(rng.normal(size=3), requires_grad=True)
        col = np.abs(rng.normal(size=(6, 1))) + 1.0

        def loss():
            out = fuse(x).div(col).mul(gamma).add(beta).relu().tensor()
            return (out * out).sum()

        check_gradients(loss, [x, gamma, beta])

    def test_grad_check_exp_and_div_operands(self):
        rng = np.random.default_rng(12)
        x = Tensor(rng.normal(size=(5, 4)) * 0.3, requires_grad=True)
        divisor = Tensor(np.abs(rng.normal(size=4)) + 1.0, requires_grad=True)

        def loss():
            out = fuse(x).exp().div(divisor).tensor()
            return (out * out).sum()

        check_gradients(loss, [x, divisor])

    def test_chained_through_downstream_graph(self):
        """A fused node composes with ordinary taped ops up- and downstream."""
        rng = np.random.default_rng(13)
        w = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        x = Tensor(rng.normal(size=(9, 4)))

        def loss():
            h = x @ w
            out = fuse(h).add(1.0).relu().tensor()
            return out.sum()

        check_gradients(loss, [w])

    def test_untaped_tensor_returns_wrapped(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 2)))
        out = fuse(x).add(1.0).tensor()
        assert not out.requires_grad and not out._parents


class TestExprValidation:
    def test_operand_must_broadcast_into_leaf(self):
        x = np.zeros((4, 3))
        with pytest.raises(ValueError, match="broadcast into the leaf"):
            fuse(x).add(np.zeros((4, 3, 2)))
        with pytest.raises(ValueError, match="broadcast into the leaf"):
            fuse(np.zeros(3)).add(np.zeros((2, 3)))

    def test_chunk_helpers(self):
        assert chunk_rows_for((1000, 64), 8, target_bytes=64 * 8 * 10) == 10
        assert chunk_rows_for((4, 64), 8, target_bytes=1) == 1
        assert chunk_rows_for((2, 1000, 64), 8, target_bytes=2 * 64 * 8 * 7) == 7
        assert list(chunk_ranges(5, 2)) == [(0, 2), (2, 4), (4, 5)]
        assert list(chunk_ranges(0, 3)) == []

    def test_mixed_dtype_chain_matches_eager(self):
        """Mid-chain promotion falls back to eager semantics, not garbage."""
        x = np.random.default_rng(0).normal(size=(6, 3)).astype(np.float32)
        operand64 = np.random.default_rng(1).normal(size=3)
        eager = np.maximum((x + x.astype(np.float32)) * 1.0, 0) ; del eager
        reference = np.maximum((x + np.float32(1.0)) * operand64, 0.0)
        out = fuse(x).add(np.float32(1.0)).mul(operand64).relu().eval()
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, reference)


class TestLayerIntegration:
    def _mlp(self, batch_norm=True, seed=0):
        mlp = MLP([6, 8, 4], np.random.default_rng(seed), batch_norm=batch_norm)
        mlp.eval()
        # Randomise BN statistics so the eval affine is non-trivial.
        rng = np.random.default_rng(seed + 1)
        for module in mlp.modules():
            if isinstance(module, BatchNorm1d):
                module.running_mean = rng.normal(size=module.num_features)
                module.running_var = np.abs(rng.normal(size=module.num_features)) + 0.5
        return mlp

    def test_fused_walk_matches_taped_mlp(self):
        from repro.autograd import inference_mode

        mlp = self._mlp()
        x = np.random.default_rng(2).normal(size=(17, 6))
        taped = mlp(Tensor(x)).data
        with inference_mode():
            fused = mlp(Tensor(x)).data
        np.testing.assert_array_equal(fused, taped)

    def test_fused_walk_direct(self):
        mlp = self._mlp(seed=4)
        x = np.random.default_rng(5).normal(size=(9, 6))
        reference = mlp(Tensor(x)).data
        out = fused_sequential_forward(mlp.net, Tensor(x))
        np.testing.assert_array_equal(out.data, reference)

    def test_fused_walk_training_bn_falls_back(self):
        """Training-mode BN inside a no-grad walk still uses batch stats."""
        from repro.autograd import no_grad

        mlp = self._mlp()
        mlp.train()
        x = np.random.default_rng(6).normal(size=(11, 6))
        reference = mlp.net(Tensor(x)).data  # taped-op chain, batch stats
        mlp2 = self._mlp()
        mlp2.train()
        with no_grad():
            out = mlp2(Tensor(x)).data
        np.testing.assert_allclose(out, reference, atol=1e-12)

    def test_chunked_bn_training_forward_bitwise(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(33, 7))
        gamma = rng.normal(size=7)
        beta = rng.normal(size=7)
        reference = _bn_train_forward(x, gamma, beta, 1e-5)
        with fusion.chunked_elementwise():
            chunked = _bn_train_forward(x, gamma, beta, 1e-5)
        for ref, got in zip(reference, chunked):
            np.testing.assert_array_equal(got, ref)

    def test_chunked_seed_bn_training_forward_bitwise(self):
        rng = np.random.default_rng(9)
        k, n, h = 3, 21, 5
        x = rng.normal(size=(k, n, h))
        gamma = rng.normal(size=(k, 1, h))
        beta = rng.normal(size=(k, 1, h))
        reference = _bn_train_forward(x, gamma, beta, 1e-5, axis=1)
        with fusion.chunked_elementwise():
            chunked = _bn_train_forward(x, gamma, beta, 1e-5, axis=1)
        for ref, got in zip(reference, chunked):
            np.testing.assert_array_equal(got, ref)

    def test_chunking_context_restores(self):
        assert not fusion.training_chunking_enabled()
        with fusion.chunked_elementwise():
            assert fusion.training_chunking_enabled()
            with fusion.chunked_elementwise(False):
                assert not fusion.training_chunking_enabled()
            assert fusion.training_chunking_enabled()
        assert not fusion.training_chunking_enabled()

    def test_seed_bn_eval_fused_matches_chain(self):
        rng = np.random.default_rng(10)
        bn = SeedBatchNorm1d(3, 5)
        bn.running_mean = rng.normal(size=(3, 5))
        bn.running_var = np.abs(rng.normal(size=(3, 5))) + 0.5
        bn.gamma.data = rng.normal(size=(3, 5))
        bn.beta.data = rng.normal(size=(3, 5))
        bn.eval()
        x = rng.normal(size=(3, 19, 5))
        taped = bn(Tensor(x)).data
        from repro.autograd import inference_mode

        with inference_mode():
            fused = bn(Tensor(x)).data
        np.testing.assert_array_equal(fused, taped)


class TestEncoderParity:
    """GIN taped forward is unchanged bitwise by the fused combine node."""

    def test_gin_fused_combine_matches_manual_chain(self):
        from repro.encoders.conv import GINConv

        rng = np.random.default_rng(3)
        g = erdos_renyi(40, 0.1, rng)
        g.x = rng.normal(size=(40, 6))
        batch = GraphBatch.from_graphs([g])
        conv = GINConv(6, 8, np.random.default_rng(0))
        conv.eps.data = np.array([0.3])
        x = Tensor(batch.x, requires_grad=True)

        out = conv(x, batch.edge_index, batch.num_nodes)
        out.sum().backward()
        grad_fused = x.grad.copy()
        eps_grad_fused = conv.eps.grad.copy()

        # Manual eager chain through the same MLP.
        from repro.graph.segment import segment_sum

        conv.zero_grad()
        x2 = Tensor(batch.x, requires_grad=True)
        src, dst = batch.edge_index
        aggregated = segment_sum(x2[src], dst, batch.num_nodes)
        combined = x2 * (conv.eps + 1.0) + aggregated
        out2 = conv.mlp(combined)
        out2.sum().backward()

        np.testing.assert_array_equal(out.data, out2.data)
        np.testing.assert_array_equal(grad_fused, x2.grad)
        np.testing.assert_array_equal(eps_grad_fused, conv.eps.grad)

    def test_model_tape_free_forward_still_bitwise(self):
        from repro.autograd import inference_mode

        rng = np.random.default_rng(4)
        graphs = []
        for _ in range(3):
            g = erdos_renyi(30, 0.1, rng)
            g.x = rng.normal(size=(30, 5))
            graphs.append(g)
        batch = GraphBatch.from_graphs(graphs)
        for name in ("gin", "gcn", "gin-virtual"):
            model = build_model(name, 5, 3, np.random.default_rng(0), hidden_dim=16, num_layers=2)
            model.eval()
            taped = model(batch).data
            with inference_mode():
                fused = model(batch).data
            np.testing.assert_array_equal(fused, taped, err_msg=name)
