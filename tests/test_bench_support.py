"""Bench support: table/series formatting and the experiment protocol."""

import warnings

import numpy as np
import pytest

from repro.bench import ExperimentProtocol, MethodResult, format_table, format_series
from repro.bench import runner as bench_runner
from repro.bench.runner import run_method_multi_seed
from repro.datasets.base import DatasetInfo, DatasetSplits
from repro.graph.generators import erdos_renyi


class TestFormatTable:
    def test_contains_title_methods_and_cells(self):
        out = format_table("My Table", ["A", "B"], {"gin": ["1.0", "2.0"], "ood-gnn": ["3.0", "4.0"]})
        assert "My Table" in out
        assert "gin" in out and "ood-gnn" in out
        assert "3.0" in out and "2.0" in out

    def test_columns_aligned(self):
        out = format_table("T", ["Col"], {"a": ["x"], "longer-name": ["y"]})
        lines = [l for l in out.splitlines() if l and not set(l) <= {"-"}]
        # All data rows have the same width.
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1

    def test_empty_rows(self):
        out = format_table("T", ["C"], {})
        assert "T" in out


class TestFormatSeries:
    def test_pairs_rendered(self):
        out = format_series("Sweep", ["2x", "5x"], [0.5, 0.75], "acc")
        assert "2x" in out and "acc 0.7500" in out

    def test_length_match_implicit(self):
        out = format_series("S", [1, 2, 3], [0.1, 0.2, 0.3])
        assert out.count("->") == 3


class TestMethodResult:
    def test_row_format(self):
        result = MethodResult(
            method="gin",
            train_mean=0.9,
            train_std=0.01,
            test_mean={"Test(large)": 0.5},
            test_std={"Test(large)": 0.05},
        )
        assert result.row("Test(large)") == "0.500±0.050"


def _tiny_dataset(seed: int) -> DatasetSplits:
    rng = np.random.default_rng((seed + 1) * 613)
    info = DatasetInfo(
        name="tiny", task_type="multiclass", num_tasks=1, metric="accuracy",
        split_method="size", feature_dim=1, num_classes=2,
    )

    def graphs(count, lo, hi):
        out = []
        for i in range(count):
            g = erdos_renyi(int(rng.integers(lo, hi)), 0.6 if i % 2 else 0.2, rng)
            g.y = i % 2
            out.append(g)
        return out

    return DatasetSplits(
        info=info, train=graphs(16, 4, 7), valid=graphs(6, 4, 7),
        tests={"Test": graphs(6, 7, 10)},
    )


class TestBatchedFallbackWarning:
    def test_unsupported_method_warns_once_and_runs_sequentially(self):
        """batched=True with a non-stackable method downgrades loudly."""
        bench_runner._FALLBACK_WARNED.clear()
        protocol = ExperimentProtocol(
            epochs=1, batch_size=8, hidden_dim=8, num_layers=2, eval_every=0
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_method_multi_seed("factorgcn", _tiny_dataset, (0,), protocol, batched=True)
            run_method_multi_seed("factorgcn", _tiny_dataset, (0,), protocol, batched=True)
        relevant = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning) and "'factorgcn'" in str(w.message)
        ]
        assert len(relevant) == 1
        assert "sequential" in str(relevant[0].message)
        assert result.method == "factorgcn"

    def test_supported_method_stays_silent(self):
        bench_runner._FALLBACK_WARNED.clear()
        protocol = ExperimentProtocol(
            epochs=1, batch_size=8, hidden_dim=8, num_layers=2, eval_every=0
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_method_multi_seed("gin", _tiny_dataset, (0,), protocol, batched=True)
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]


class TestProtocol:
    def test_defaults(self):
        proto = ExperimentProtocol()
        assert proto.epochs > 0
        assert proto.ood_overrides == {}

    def test_overrides_independent_instances(self):
        a, b = ExperimentProtocol(), ExperimentProtocol()
        a.ood_overrides["momentum"] = 0.5
        assert "momentum" not in b.ood_overrides
