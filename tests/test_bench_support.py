"""Bench support: table/series formatting and the experiment protocol."""

import numpy as np
import pytest

from repro.bench import ExperimentProtocol, MethodResult, format_table, format_series


class TestFormatTable:
    def test_contains_title_methods_and_cells(self):
        out = format_table("My Table", ["A", "B"], {"gin": ["1.0", "2.0"], "ood-gnn": ["3.0", "4.0"]})
        assert "My Table" in out
        assert "gin" in out and "ood-gnn" in out
        assert "3.0" in out and "2.0" in out

    def test_columns_aligned(self):
        out = format_table("T", ["Col"], {"a": ["x"], "longer-name": ["y"]})
        lines = [l for l in out.splitlines() if l and not set(l) <= {"-"}]
        # All data rows have the same width.
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1

    def test_empty_rows(self):
        out = format_table("T", ["C"], {})
        assert "T" in out


class TestFormatSeries:
    def test_pairs_rendered(self):
        out = format_series("Sweep", ["2x", "5x"], [0.5, 0.75], "acc")
        assert "2x" in out and "acc 0.7500" in out

    def test_length_match_implicit(self):
        out = format_series("S", [1, 2, 3], [0.1, 0.2, 0.3])
        assert out.count("->") == 3


class TestMethodResult:
    def test_row_format(self):
        result = MethodResult(
            method="gin",
            train_mean=0.9,
            train_std=0.01,
            test_mean={"Test(large)": 0.5},
            test_std={"Test(large)": 0.05},
        )
        assert result.row("Test(large)") == "0.500±0.050"


class TestProtocol:
    def test_defaults(self):
        proto = ExperimentProtocol()
        assert proto.epochs > 0
        assert proto.ood_overrides == {}

    def test_overrides_independent_instances(self):
        a, b = ExperimentProtocol(), ExperimentProtocol()
        a.ood_overrides["momentum"] = 0.5
        assert "momentum" not in b.ood_overrides
