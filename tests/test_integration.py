"""End-to-end integration: datasets -> models -> training -> evaluation."""

import numpy as np
import pytest

from repro.bench import ExperimentProtocol, run_method, run_method_multi_seed
from repro.datasets import load_dataset
from repro.encoders import available_models


TINY = ExperimentProtocol(epochs=2, batch_size=16, hidden_dim=8, num_layers=2, eval_every=1)


@pytest.fixture(scope="module")
def proteins():
    return load_dataset("proteins25", seed=0, num_train=24, num_valid=8, num_test=8)


@pytest.fixture(scope="module")
def bace():
    return load_dataset("ogbg-molbace", seed=0, num_graphs=80)


@pytest.fixture(scope="module")
def esol():
    return load_dataset("ogbg-molesol", seed=0, num_graphs=80)


class TestRunMethod:
    @pytest.mark.parametrize("method", list(available_models()) + ["ood-gnn"])
    def test_every_method_trains_on_classification(self, proteins, method):
        train, tests = run_method(method, proteins, seed=0, protocol=TINY)
        assert 0.0 <= train <= 1.0
        assert set(tests) == {"Test(large)"}
        assert 0.0 <= tests["Test(large)"] <= 1.0

    def test_binary_multitask(self, bace):
        train, tests = run_method("gin", bace, seed=0, protocol=TINY)
        assert 0.0 <= tests["Test(scaffold)"] <= 1.0

    def test_regression(self, esol):
        train, tests = run_method("ood-gnn", esol, seed=0, protocol=TINY)
        assert np.isfinite(tests["Test(scaffold)"])

    def test_multi_seed_aggregation(self):
        factory = lambda seed: load_dataset(
            "proteins25", seed=seed, num_train=20, num_valid=6, num_test=6
        )
        result = run_method_multi_seed("gcn", factory, (0, 1), TINY)
        assert result.method == "gcn"
        assert result.test_std["Test(large)"] >= 0.0
        assert "±" in result.row("Test(large)")

    def test_mnist_two_test_splits(self):
        ds = load_dataset("mnist75sp", seed=0, num_train=12, num_valid=4, num_test=4)
        _train, tests = run_method("gin", ds, seed=0, protocol=TINY)
        assert set(tests) == {"Test(noise)", "Test(color)"}

    def test_ood_overrides_reach_config(self, proteins):
        proto = ExperimentProtocol(
            epochs=2, batch_size=16, hidden_dim=8, num_layers=2,
            ood_overrides={"linear_decorrelation": True, "reweight_epochs": 2},
        )
        train, _tests = run_method("ood-gnn", proteins, seed=0, protocol=proto)
        assert np.isfinite(train)


class TestReproducibility:
    def test_same_seed_same_result(self, proteins):
        a = run_method("gcn", proteins, seed=3, protocol=TINY)
        b = run_method("gcn", proteins, seed=3, protocol=TINY)
        assert a[0] == b[0]
        assert a[1] == b[1]

    def test_different_seed_different_initialisation(self):
        from repro.encoders import build_model

        a = build_model("gcn", 3, 2, np.random.default_rng((3 + 1) * 7919), hidden_dim=8)
        b = build_model("gcn", 3, 2, np.random.default_rng((4 + 1) * 7919), hidden_dim=8)
        assert not np.allclose(a.encoder.embed.weight.data, b.encoder.embed.weight.data)
