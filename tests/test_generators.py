"""Random graph generators."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.utils import is_undirected, to_networkx


@pytest.fixture
def rng():
    return np.random.default_rng(103)


class TestFamilies:
    def test_erdos_renyi_basic(self, rng):
        g = generators.erdos_renyi(20, 0.3, rng)
        assert g.num_nodes == 20
        assert is_undirected(g.edge_index)

    def test_erdos_renyi_density_tracks_p(self, rng):
        dense = np.mean([generators.erdos_renyi(30, 0.6, rng).num_edges for _ in range(5)])
        sparse = np.mean([generators.erdos_renyi(30, 0.1, rng).num_edges for _ in range(5)])
        assert dense > 2 * sparse

    def test_barabasi_albert_connected(self, rng):
        import networkx as nx

        g = generators.barabasi_albert(25, 2, rng)
        assert nx.is_connected(to_networkx(g))

    def test_barabasi_albert_clamps_attachment(self, rng):
        g = generators.barabasi_albert(3, 10, rng)
        assert g.num_nodes == 3

    def test_watts_strogatz_even_k(self, rng):
        g = generators.watts_strogatz(16, 5, 0.2, rng)  # odd k corrected to 4
        assert g.num_nodes == 16

    def test_stochastic_block_intra_density(self, rng):
        g = generators.stochastic_block([15, 15], 0.8, 0.02, rng)
        adj = np.zeros((30, 30))
        adj[g.edge_index[0], g.edge_index[1]] = 1
        intra = adj[:15, :15].sum() + adj[15:, 15:].sum()
        inter = adj[:15, 15:].sum() + adj[15:, :15].sum()
        assert intra > 3 * inter

    def test_graph_from_edge_set_normalises(self):
        g = generators.graph_from_edge_set(4, {(1, 0), (0, 1), (2, 2), (2, 3)})
        # Duplicate orientation collapsed, self loop dropped.
        assert g.num_edges == 4  # 2 undirected pairs, both directions stored

    def test_random_tree_edges_span(self, rng):
        edges = generators.random_tree_edges(10, rng)
        assert len(edges) == 9
        import networkx as nx

        t = nx.Graph(edges)
        assert nx.is_tree(t)

    def test_reproducible_with_seed(self):
        a = generators.erdos_renyi(15, 0.4, np.random.default_rng(5))
        b = generators.erdos_renyi(15, 0.4, np.random.default_rng(5))
        np.testing.assert_array_equal(a.edge_index, b.edge_index)
