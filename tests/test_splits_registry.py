"""Split strategies, transforms, the dataset registry, and OGB suite."""

import numpy as np
import pytest

from repro.datasets import (
    load_dataset,
    DATASET_NAMES,
    make_ogb_dataset,
    OGB_DATASET_NAMES,
    size_split,
    scaffold_split,
    random_split,
    dataset_statistics,
)
from repro.datasets.base import DatasetInfo, DatasetSplits
from repro.datasets.transforms import add_gaussian_noise, add_color_noise, one_hot_degree_features
from repro.graph.data import Graph
from repro.graph.generators import erdos_renyi


@pytest.fixture
def rng():
    return np.random.default_rng(89)


def sized_graphs(rng, sizes):
    graphs = []
    for n in sizes:
        g = erdos_renyi(n, 0.3, rng)
        g.y = 0
        graphs.append(g)
    return graphs


class TestSizeSplit:
    def test_partitions_by_threshold(self, rng):
        graphs = sized_graphs(rng, [5, 10, 20, 40, 80])
        train, valid, test = size_split(graphs, 20, rng, valid_fraction=0.34)
        assert all(g.num_nodes <= 20 for g in train + valid)
        assert all(g.num_nodes > 20 for g in test)

    def test_empty_side_raises(self, rng):
        graphs = sized_graphs(rng, [5, 6])
        with pytest.raises(ValueError):
            size_split(graphs, 20, rng)
        with pytest.raises(ValueError):
            size_split(graphs, 2, rng)


class TestScaffoldSplit:
    def test_missing_meta_raises(self, rng):
        g = erdos_renyi(5, 0.5, rng)
        with pytest.raises(KeyError):
            scaffold_split([g])

    def test_fraction_validation(self, rng):
        g = erdos_renyi(5, 0.5, rng)
        g.meta["scaffold"] = 0
        with pytest.raises(ValueError):
            scaffold_split([g], fractions=(0.5, 0.2, 0.2))


class TestRandomSplit:
    def test_sizes(self, rng):
        graphs = sized_graphs(rng, [5] * 20)
        train, valid, test = random_split(graphs, rng, (0.5, 0.25, 0.25))
        assert (len(train), len(valid), len(test)) == (10, 5, 5)

    def test_disjoint_cover(self, rng):
        graphs = sized_graphs(rng, [5] * 10)
        train, valid, test = random_split(graphs, rng)
        ids = [id(g) for g in train + valid + test]
        assert len(set(ids)) == 10


class TestTransforms:
    def test_gaussian_noise_changes_selected_channels_only(self, rng):
        g = erdos_renyi(5, 0.5, rng)
        g.x = np.hstack([np.ones((5, 2)), np.zeros((5, 1))])
        noisy = add_gaussian_noise([g], 0.5, rng, channels=slice(0, 2))[0]
        assert not np.allclose(noisy.x[:, :2], 1.0)
        np.testing.assert_allclose(noisy.x[:, 2], 0.0)
        # Shared draw: both channels get identical noise.
        np.testing.assert_allclose(noisy.x[:, 0], noisy.x[:, 1])

    def test_color_noise_independent_per_channel(self, rng):
        g = erdos_renyi(5, 0.5, rng)
        g.x = np.ones((5, 3))
        noisy = add_color_noise([g], 0.5, rng, channels=slice(0, 3))[0]
        assert not np.allclose(noisy.x[:, 0], noisy.x[:, 1])

    def test_originals_untouched(self, rng):
        g = erdos_renyi(5, 0.5, rng)
        g.x = np.ones((5, 2))
        add_gaussian_noise([g], 1.0, rng)
        np.testing.assert_allclose(g.x, 1.0)

    def test_one_hot_degree(self, rng):
        g = erdos_renyi(6, 0.5, rng)
        out = one_hot_degree_features(g, max_degree=3)
        assert out.x.shape == (6, 4)
        np.testing.assert_allclose(out.x.sum(axis=1), 1.0)


class TestDatasetInfo:
    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetInfo("x", "ranking", 1, "accuracy", "size", 3)
        with pytest.raises(ValueError):
            DatasetInfo("x", "multiclass", 1, "accuracy", "size", 3, num_classes=1)

    def test_model_out_dim(self):
        multi = DatasetInfo("x", "multiclass", 1, "accuracy", "size", 3, num_classes=7)
        assert multi.model_out_dim == 7
        binary = DatasetInfo("x", "binary", 12, "rocauc", "scaffold", 3)
        assert binary.model_out_dim == 12

    def test_single_test_property(self):
        info = DatasetInfo("x", "binary", 1, "rocauc", "scaffold", 3)
        splits = DatasetSplits(info=info, tests={"a": [], "b": []})
        with pytest.raises(ValueError):
            _ = splits.test

    def test_statistics_empty(self):
        assert dataset_statistics([])["num_graphs"] == 0

    def test_statistics_counts_undirected_edges(self):
        g = Graph(x=np.ones((2, 1)), edge_index=np.array([[0, 1], [1, 0]]))
        stats = dataset_statistics([g])
        assert stats["avg_edges"] == 1.0


class TestRegistry:
    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet")

    def test_reproducible(self):
        a = load_dataset("proteins25", seed=1, num_train=8, num_valid=3, num_test=3)
        b = load_dataset("proteins25", seed=1, num_train=8, num_valid=3, num_test=3)
        np.testing.assert_array_equal(a.train[0].edge_index, b.train[0].edge_index)

    def test_all_ogb_names_build(self):
        for name in OGB_DATASET_NAMES:
            ds = load_dataset(name, seed=0, num_graphs=80)
            assert ds.train and ds.valid and ds.tests
            assert ds.info.name == name

    def test_ogb_info_matches_table1(self):
        specs = {
            "ogbg-moltox21": (12, "binary", "rocauc"),
            "ogbg-molsider": (27, "binary", "rocauc"),
            "ogbg-molesol": (1, "regression", "rmse"),
        }
        for name, (tasks, task_type, metric) in specs.items():
            ds = load_dataset(name, seed=0, num_graphs=60)
            assert ds.info.num_tasks == tasks
            assert ds.info.task_type == task_type
            assert ds.info.metric == metric

    def test_unknown_ogb_name(self, rng):
        with pytest.raises(ValueError):
            make_ogb_dataset("ogbg-molwhat", rng)

    def test_scale_shrinks_dataset(self):
        small = load_dataset("triangles", seed=0, scale=0.1)
        assert len(small.train) == 30

    def test_names_cover_14_datasets(self):
        assert len(DATASET_NAMES) == 15  # 6 synthetic/TU + 9 OGB
