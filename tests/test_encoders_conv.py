"""Convolution layers: shapes, semantics, and invariances."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.encoders import GCNConv, GINConv, PNAConv, FactorGCNConv
from repro.graph.utils import undirected_edge_index


@pytest.fixture
def rng():
    return np.random.default_rng(23)


@pytest.fixture
def path_graph():
    """0 - 1 - 2 path."""
    return undirected_edge_index([(0, 1), (1, 2)]), 3


def permute_graph(x, edge_index, perm):
    """Apply a node permutation to features and connectivity."""
    inverse = np.argsort(perm)
    return x[perm], inverse[edge_index][:, :]


class TestGCNConv:
    def test_output_shape(self, rng, path_graph):
        edges, n = path_graph
        conv = GCNConv(4, 8, rng)
        out = conv(Tensor(rng.normal(size=(n, 4))), edges, n)
        assert out.shape == (n, 8)

    def test_isolated_node_keeps_self_signal(self, rng):
        conv = GCNConv(2, 2, rng)
        x = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        out = conv(x, np.zeros((2, 0), dtype=np.int64), 2)
        # With only self loops, out = x @ W (degree 1 normalisation).
        np.testing.assert_allclose(out.data, (x.data @ conv.linear.weight.data) + conv.linear.bias.data, atol=1e-12)

    def test_permutation_equivariance(self, rng, path_graph):
        edges, n = path_graph
        conv = GCNConv(3, 5, rng)
        x = rng.normal(size=(n, 3))
        out = conv(Tensor(x), edges, n).data
        perm = np.array([2, 0, 1])
        # node i of the permuted graph is node perm[i] of the original
        x_p = x[perm]
        relabel = np.argsort(perm)
        edges_p = relabel[edges]
        out_p = conv(Tensor(x_p), edges_p, n).data
        np.testing.assert_allclose(out_p, out[perm], atol=1e-10)

    def test_gradients_reach_weights(self, rng, path_graph):
        edges, n = path_graph
        conv = GCNConv(3, 5, rng)
        conv(Tensor(rng.normal(size=(n, 3))), edges, n).sum().backward()
        assert conv.linear.weight.grad is not None


class TestGINConv:
    def test_sum_aggregation_semantics(self, rng):
        conv = GINConv(2, 4, rng)
        conv.eval()  # freeze batch-norm to running stats for determinism
        edges = undirected_edge_index([(0, 1)])
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = conv(Tensor(x), edges, 2).data
        # (1+eps)*x_i + sum_j x_j with eps=0 -> both nodes get [1, 1].
        mlp_in_0 = x[0] + x[1]
        expected = conv.mlp(Tensor(mlp_in_0[None, :])).data
        np.testing.assert_allclose(out[0], expected[0], atol=1e-10)

    def test_eps_parameter_trains(self, rng, ):
        conv = GINConv(2, 4, rng)
        edges = undirected_edge_index([(0, 1)])
        out = conv(Tensor(rng.normal(size=(2, 2))), edges, 2)
        out.sum().backward()
        assert conv.eps.grad is not None

    def test_no_train_eps(self, rng):
        conv = GINConv(2, 4, rng, train_eps=False)
        assert conv.eps is None
        edges = undirected_edge_index([(0, 1)])
        out = conv(Tensor(rng.normal(size=(2, 2))), edges, 2)
        assert out.shape == (2, 4)

    def test_edgeless_graph(self, rng):
        conv = GINConv(2, 4, rng)
        out = conv(Tensor(rng.normal(size=(3, 2))), np.zeros((2, 0), dtype=np.int64), 3)
        assert out.shape == (3, 4)


class TestPNAConv:
    def test_output_shape(self, rng, path_graph):
        edges, n = path_graph
        conv = PNAConv(3, 6, rng, degree_scale=1.0)
        out = conv(Tensor(rng.normal(size=(n, 3))), edges, n)
        assert out.shape == (n, 6)

    def test_concat_width(self, rng):
        conv = PNAConv(3, 6, rng)
        # 4 aggregators x 3 scalers + self = 13 blocks of width 6.
        assert conv.post.in_features == 13 * 6

    def test_degree_scale_floor(self, rng):
        conv = PNAConv(2, 2, rng, degree_scale=0.0)
        assert conv.degree_scale > 0

    def test_edgeless_graph(self, rng):
        conv = PNAConv(3, 4, rng)
        out = conv(Tensor(rng.normal(size=(2, 3))), np.zeros((2, 0), dtype=np.int64), 2)
        assert out.shape == (2, 4)
        assert np.isfinite(out.data).all()

    def test_std_aggregator_nonnegative_under_constant_input(self, rng):
        conv = PNAConv(2, 4, rng)
        edges = undirected_edge_index([(0, 1), (1, 2), (0, 2)])
        x = Tensor(np.ones((3, 2)))
        out = conv(x, edges, 3)
        assert np.isfinite(out.data).all()


class TestFactorGCN:
    def test_output_dim_must_divide(self, rng):
        with pytest.raises(ValueError):
            FactorGCNConv(4, 10, 3, rng)

    def test_output_shape_and_factors(self, rng, path_graph):
        edges, n = path_graph
        conv = FactorGCNConv(3, 8, 4, rng)
        out = conv(Tensor(rng.normal(size=(n, 3))), edges, n)
        assert out.shape == (n, 8)
        assert conv._last_attention.shape == (4, edges.shape[1])

    def test_disentangle_penalty_range(self, rng, path_graph):
        edges, n = path_graph
        conv = FactorGCNConv(3, 8, 4, rng)
        conv(Tensor(rng.normal(size=(n, 3))), edges, n)
        penalty = conv.disentangle_penalty()
        assert -1.0 <= penalty <= 1.0

    def test_penalty_zero_before_forward(self, rng):
        conv = FactorGCNConv(3, 8, 2, rng)
        assert conv.disentangle_penalty() == 0.0

    def test_edgeless_graph(self, rng):
        conv = FactorGCNConv(3, 6, 2, rng)
        out = conv(Tensor(rng.normal(size=(2, 3))), np.zeros((2, 0), dtype=np.int64), 2)
        assert out.shape == (2, 6)
