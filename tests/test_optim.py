"""Optimisers: convergence on convex problems, state handling, clipping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.module import Parameter


def quadratic_minimise(optimizer_factory, steps=300):
    """Minimise ||x - target||^2 and return the final point."""
    x = Parameter(np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    opt = optimizer_factory([x])
    for _ in range(steps):
        opt.zero_grad()
        diff = x - Tensor(target)
        (diff * diff).sum().backward()
        opt.step()
    return x.data, target


class TestSGD:
    def test_converges(self):
        final, target = quadratic_minimise(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(final, target, atol=1e-4)

    def test_momentum_converges(self):
        final, target = quadratic_minimise(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(final, target, atol=1e-4)

    def test_weight_decay_shrinks(self):
        x = Parameter(np.array([1.0]))
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        x.grad = np.array([0.0])
        opt.step()
        assert x.data[0] == pytest.approx(0.9)

    def test_skips_params_without_grad(self):
        x = Parameter(np.array([1.0]))
        SGD([x], lr=0.1).step()
        assert x.data[0] == 1.0

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_converges(self):
        final, target = quadratic_minimise(lambda p: Adam(p, lr=0.05))
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr regardless of
        # gradient magnitude.
        x = Parameter(np.array([0.0]))
        opt = Adam([x], lr=0.1)
        x.grad = np.array([1e6])
        opt.step()
        assert x.data[0] == pytest.approx(-0.1, rel=1e-6)

    def test_zero_grad_clears(self):
        x = Parameter(np.array([1.0]))
        x.grad = np.array([1.0])
        Adam([x]).zero_grad()
        assert x.grad is None


class TestAdamW:
    def test_decoupled_decay_applied(self):
        x = Parameter(np.array([1.0]))
        opt = AdamW([x], lr=0.1, weight_decay=0.5)
        x.grad = np.array([0.0])
        opt.step()
        # Decay shrinks by lr*wd = 0.05; Adam step is 0 for zero grad.
        assert x.data[0] == pytest.approx(0.95)

    def test_weight_decay_preserved_after_step(self):
        opt = AdamW([Parameter(np.zeros(1))], lr=0.1, weight_decay=0.5)
        opt.params[0].grad = np.zeros(1)
        opt.step()
        assert opt.weight_decay == 0.5


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        x = Parameter(np.zeros(2))
        x.grad = np.array([3.0, 4.0])
        pre = clip_grad_norm([x], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)

    def test_no_clip_when_small(self):
        x = Parameter(np.zeros(2))
        x.grad = np.array([0.3, 0.4])
        clip_grad_norm([x], max_norm=1.0)
        np.testing.assert_allclose(x.grad, [0.3, 0.4])

    def test_empty_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0
