"""Metrics: accuracy, ROC-AUC (ties, multi-task, NaN), RMSE."""

import numpy as np
import pytest

from repro.training import accuracy, roc_auc, rmse, evaluate_metric


class TestAccuracy:
    def test_multiclass(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_binary_from_scores(self):
        scores = np.array([0.5, -0.2, 1.0])
        assert accuracy(scores, np.array([1, 0, 1])) == 1.0


class TestROCAUC:
    def test_perfect_separation(self):
        assert roc_auc(np.array([0.1, 0.2, 0.8, 0.9]), np.array([0, 0, 1, 1])) == 1.0

    def test_perfect_inversion(self):
        assert roc_auc(np.array([0.9, 0.8, 0.2, 0.1]), np.array([0, 0, 1, 1])) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=2000)
        labels = rng.integers(0, 2, 2000)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_half_credit(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_matches_naive_pairwise(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=50)
        labels = rng.integers(0, 2, 50)
        pos, neg = scores[labels == 1], scores[labels == 0]
        pairs = (pos[:, None] > neg[None, :]).mean() + 0.5 * (pos[:, None] == neg[None, :]).mean()
        assert roc_auc(scores, labels) == pytest.approx(pairs, abs=1e-12)

    def test_multitask_averages_valid_tasks(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9], [0.8, 0.5], [0.2, 0.5]])
        # Task 0 perfectly separable; task 1 all same label -> skipped.
        targets = np.array([[1.0, 1.0], [0.0, 1.0], [1.0, 1.0], [0.0, 1.0]])
        assert roc_auc(scores, targets) == 1.0

    def test_nan_masked(self):
        scores = np.array([[0.9], [0.1], [0.5], [0.6]])
        targets = np.array([[1.0], [0.0], [np.nan], [np.nan]])
        assert roc_auc(scores, targets) == 1.0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.2]), np.array([1, 1]))

    def test_rank_invariance(self):
        """AUC depends only on score order, so logits and sigmoids agree."""
        scores = np.array([-2.0, 0.5, 3.0, -1.0])
        labels = np.array([0, 1, 1, 0])
        sig = 1 / (1 + np.exp(-scores))
        assert roc_auc(scores, labels) == roc_auc(sig, labels)


class TestRMSE:
    def test_value(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(np.sqrt(2.5))

    def test_nan_targets_ignored(self):
        assert rmse(np.array([1.0, 100.0]), np.array([0.0, np.nan])) == pytest.approx(1.0)

    def test_zero_for_exact(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0


class TestDispatch:
    def test_known_metrics(self):
        assert evaluate_metric("accuracy", np.array([[1.0, 0.0]]), np.array([0])) == 1.0
        assert evaluate_metric("rmse", np.array([1.0]), np.array([1.0])) == 0.0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            evaluate_metric("f1", np.zeros(2), np.zeros(2))
