"""Shared fixtures: the encoder roster registry every parity suite iterates.

``ENCODER_SPECS`` is the single source of truth for the encoder zoo in the
test suite.  ``test_multiseed.py`` (batched-vs-sequential bitwise parity),
``test_tape_free.py`` (taped-vs-tape-free bitwise parity), ``test_dtype.py``
(float32 tolerance bounds) and ``test_serve_pool.py`` (pool-vs-in-process
serving) all parametrise over it instead of keeping private roster lists.

Each spec records whether the architecture has a registered seed stacker
(``repro.nn.layers.register_seed_stacker``).  The import-time check below
fails collection loudly whenever a model registered in
``repro.encoders.available_models`` is missing from the spec list (or vice
versa), so growing the zoo without extending the parity suites is
impossible to do silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.encoders import available_models, build_model


@dataclass(frozen=True)
class EncoderSpec:
    """One encoder roster entry: registry name + seed-stacking capability."""

    name: str
    #: True when the architecture has a registered multi-seed stacker, i.e.
    #: `stack_seed_modules` produces a batched (K, ...) model for it.
    stackable: bool
    #: Extra `build_model` keyword arguments this architecture needs.
    build_kwargs: dict = field(default_factory=dict)

    def build(self, feature_dim, out_dim, rng, hidden_dim=8, num_layers=2, **overrides):
        """Construct one model instance via the real `build_model` registry."""
        kwargs = {**self.build_kwargs, **overrides}
        return build_model(
            self.name, feature_dim, out_dim, rng,
            hidden_dim=hidden_dim, num_layers=num_layers, **kwargs,
        )

    def factory(self, feature_dim, out_dim, hidden_dim=8, num_layers=2, **overrides):
        """A ``seed -> model`` factory with the conventional seed-derived rng."""

        def make(seed):
            return self.build(
                feature_dim, out_dim, np.random.default_rng((seed + 1) * 7919),
                hidden_dim=hidden_dim, num_layers=num_layers, **overrides,
            )

        return make


#: The full roster, in `available_models()` order.  FactorGCN is the one
#: deliberate hole in the seed-stacking registry: its per-factor attention
#: contracts `(n, 2h) @ (2h,)` as a GEMV, which has no batched equivalent
#: that is bitwise-identical to the sequential GEMV, so it stays on the
#: sequential fallback path (and doubles as the real-encoder fallback
#: example in the warning tests).
ENCODER_SPECS = (
    EncoderSpec("gcn", stackable=True),
    EncoderSpec("gcn-virtual", stackable=True),
    EncoderSpec("gin", stackable=True),
    EncoderSpec("gin-virtual", stackable=True),
    EncoderSpec("factorgcn", stackable=False),
    EncoderSpec("pna", stackable=True),
    EncoderSpec("topkpool", stackable=True),
    EncoderSpec("sagpool", stackable=True),
    EncoderSpec("gat", stackable=True),
    EncoderSpec("sage", stackable=True),
)

STACKABLE_SPECS = tuple(spec for spec in ENCODER_SPECS if spec.stackable)
UNSTACKABLE_SPECS = tuple(spec for spec in ENCODER_SPECS if not spec.stackable)

# Loud completeness check: the spec registry must mirror the model registry
# exactly.  Raising here aborts pytest collection with a clear message.
_spec_names = tuple(spec.name for spec in ENCODER_SPECS)
if sorted(_spec_names) != sorted(available_models()):
    _missing = sorted(set(available_models()) - set(_spec_names))
    _extra = sorted(set(_spec_names) - set(available_models()))
    raise RuntimeError(
        "tests/conftest.py ENCODER_SPECS is out of sync with "
        f"repro.encoders.available_models(): missing specs for {_missing}, "
        f"stale specs {_extra}.  Add an EncoderSpec (with an explicit "
        "stackable flag) for every registered encoder."
    )
if len(set(_spec_names)) != len(_spec_names):
    raise RuntimeError("tests/conftest.py ENCODER_SPECS contains duplicate names")


def encoder_spec(name: str) -> EncoderSpec:
    """Look up one roster entry by `build_model` name."""
    for spec in ENCODER_SPECS:
        if spec.name == name:
            return spec
    raise KeyError(name)


def spec_params(specs):
    """``pytest.param`` list with readable ids for roster parametrisation."""
    return [pytest.param(spec, id=spec.name) for spec in specs]
