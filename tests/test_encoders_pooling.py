"""Pooling: global readouts, top-k selection, hierarchical poolers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.encoders import TopKPooling, SAGPooling, global_sum_pool, global_mean_pool, global_max_pool
from repro.encoders.pooling import topk_select, filter_edges
from repro.graph.utils import undirected_edge_index


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestGlobalReadouts:
    def test_sum_mean_max(self):
        x = Tensor(np.array([[1.0], [3.0], [10.0]]))
        batch = np.array([0, 0, 1])
        np.testing.assert_allclose(global_sum_pool(x, batch, 2).data, [[4.0], [10.0]])
        np.testing.assert_allclose(global_mean_pool(x, batch, 2).data, [[2.0], [10.0]])
        np.testing.assert_allclose(global_max_pool(x, batch, 2).data, [[3.0], [10.0]])

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        batch = np.array([0, 0, 1, 1])
        (global_sum_pool(x, batch, 2) ** 2).sum().backward()
        assert x.grad is not None


class TestTopKSelect:
    def test_keeps_ratio_per_graph(self):
        scores = np.array([0.9, 0.1, 0.5, 0.8, 0.2, 0.7])
        batch = np.array([0, 0, 0, 1, 1, 1])
        kept = topk_select(scores, batch, 2, ratio=0.5)
        # ceil(0.5*3) = 2 nodes per graph.
        assert len(kept) == 4
        assert set(kept) == {0, 2, 3, 5}

    def test_always_keeps_at_least_one(self):
        scores = np.array([0.5, 0.1])
        batch = np.array([0, 1])
        kept = topk_select(scores, batch, 2, ratio=0.01)
        assert len(kept) == 2

    def test_returns_sorted_indices(self, rng):
        scores = rng.normal(size=10)
        batch = np.repeat([0, 1], 5)
        kept = topk_select(scores, batch, 2, ratio=0.6)
        assert np.all(np.diff(kept) > 0)

    def test_handles_empty_graph_slot(self):
        # Graph 1 has no nodes.
        scores = np.array([0.5, 0.3])
        batch = np.array([0, 0])
        kept = topk_select(scores, batch, 2, ratio=0.5)
        assert len(kept) == 1


class TestFilterEdges:
    def test_induced_subgraph_reindexed(self):
        edges = undirected_edge_index([(0, 1), (1, 2), (2, 3)])
        kept = np.array([1, 2])
        out = filter_edges(edges, kept, 4)
        # Only edge (1,2) survives, renumbered to (0,1) both directions.
        assert out.shape == (2, 2)
        assert set(map(tuple, out.T.tolist())) == {(0, 1), (1, 0)}

    def test_no_surviving_edges(self):
        edges = undirected_edge_index([(0, 1)])
        out = filter_edges(edges, np.array([0]), 2)
        assert out.shape == (2, 0)

    def test_empty_input(self):
        out = filter_edges(np.zeros((2, 0), dtype=np.int64), np.array([0]), 1)
        assert out.shape == (2, 0)


class TestPoolingLayers:
    @pytest.mark.parametrize("pool_cls", [TopKPooling, SAGPooling])
    def test_reduces_nodes(self, rng, pool_cls):
        pool = pool_cls(4, rng, ratio=0.5)
        edges = undirected_edge_index([(0, 1), (1, 2), (2, 3), (3, 0)])
        x = Tensor(rng.normal(size=(4, 4)))
        batch = np.zeros(4, dtype=np.int64)
        new_x, new_edges, new_batch = pool(x, edges, batch, 1)
        assert new_x.shape == (2, 4)
        assert len(new_batch) == 2

    @pytest.mark.parametrize("pool_cls", [TopKPooling, SAGPooling])
    def test_invalid_ratio(self, rng, pool_cls):
        with pytest.raises(ValueError):
            pool_cls(4, rng, ratio=0.0)

    def test_gradient_flows_through_gate(self, rng):
        pool = TopKPooling(3, rng, ratio=1.0)
        edges = undirected_edge_index([(0, 1)])
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        new_x, _, _ = pool(x, edges, np.zeros(2, dtype=np.int64), 1)
        new_x.sum().backward()
        assert x.grad is not None
        assert pool.projection.grad is not None

    def test_sag_scores_use_structure(self, rng):
        # SAGPool scores come from a GCN conv: gradients reach its weights.
        pool = SAGPooling(3, rng, ratio=0.5)
        edges = undirected_edge_index([(0, 1), (1, 2)])
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        new_x, _, _ = pool(x, edges, np.zeros(3, dtype=np.int64), 1)
        new_x.sum().backward()
        assert pool.score_conv.linear.weight.grad is not None
