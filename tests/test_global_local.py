"""Global-local weight estimator: memory groups and momentum updates."""

import numpy as np
import pytest

from repro.core import GlobalLocalWeightEstimator


@pytest.fixture
def rng():
    return np.random.default_rng(59)


class TestConstruction:
    def test_scalar_momentum_broadcast(self):
        est = GlobalLocalWeightEstimator(3, 0.9)
        assert est.momentums == [0.9, 0.9, 0.9]

    def test_per_group_momentum(self):
        est = GlobalLocalWeightEstimator(2, [0.9, 0.5])
        assert est.momentums == [0.9, 0.5]

    def test_momentum_count_mismatch(self):
        with pytest.raises(ValueError):
            GlobalLocalWeightEstimator(2, [0.9])

    def test_momentum_range(self):
        with pytest.raises(ValueError):
            GlobalLocalWeightEstimator(1, 1.0)
        with pytest.raises(ValueError):
            GlobalLocalWeightEstimator(1, -0.1)

    def test_negative_groups(self):
        with pytest.raises(ValueError):
            GlobalLocalWeightEstimator(-1)


class TestLifecycle:
    def test_concat_before_init_returns_local_only(self, rng):
        est = GlobalLocalWeightEstimator(2)
        z = rng.normal(size=(8, 4))
        z_hat, w_global = est.concat(z, np.ones(8))
        np.testing.assert_allclose(z_hat, z)
        assert w_global is None

    def test_first_update_installs_copies(self, rng):
        est = GlobalLocalWeightEstimator(2, 0.9)
        z, w = rng.normal(size=(8, 4)), rng.uniform(0.5, 1.5, 8)
        est.update(z, w)
        assert est.initialised
        np.testing.assert_allclose(est.global_representations(), np.concatenate([z, z]))
        # Mutating the input must not mutate the memory.
        z[0, 0] = 99.0
        assert est.global_representations()[0, 0] != 99.0

    def test_concat_shapes_after_init(self, rng):
        est = GlobalLocalWeightEstimator(3, 0.9)
        z = rng.normal(size=(8, 4))
        est.update(z, np.ones(8))
        z_hat, w_global = est.concat(z, np.ones(8))
        assert z_hat.shape == ((3 + 1) * 8, 4)
        assert w_global.shape == (24,)

    def test_momentum_update_math(self):
        est = GlobalLocalWeightEstimator(1, 0.9)
        z0 = np.zeros((4, 2))
        est.update(z0, np.zeros(4))
        z1 = np.ones((4, 2))
        est.update(z1, np.ones(4))
        np.testing.assert_allclose(est.global_representations(), 0.1)
        np.testing.assert_allclose(est.global_weights(), 0.1)

    def test_long_vs_short_memory(self, rng):
        est = GlobalLocalWeightEstimator(2, [0.99, 0.1])
        est.update(np.zeros((4, 2)), np.zeros(4))
        est.update(np.ones((4, 2)), np.ones(4))
        z = est.global_representations()
        long_term, short_term = z[:4], z[4:]
        assert long_term.mean() < short_term.mean()

    def test_zero_groups_disabled(self, rng):
        est = GlobalLocalWeightEstimator(0)
        z = rng.normal(size=(4, 2))
        est.update(z, np.ones(4))
        assert not est.initialised
        z_hat, w_global = est.concat(z, np.ones(4))
        np.testing.assert_allclose(z_hat, z)
        assert w_global is None

    def test_batch_shape_mismatch_raises(self, rng):
        est = GlobalLocalWeightEstimator(1)
        est.update(rng.normal(size=(8, 4)), np.ones(8))
        with pytest.raises(ValueError):
            est.update(rng.normal(size=(4, 4)), np.ones(4))

    def test_width_mismatch_on_concat_raises(self, rng):
        est = GlobalLocalWeightEstimator(1)
        est.update(rng.normal(size=(8, 4)), np.ones(8))
        with pytest.raises(ValueError):
            est.concat(rng.normal(size=(8, 5)), np.ones(8))

    def test_reset(self, rng):
        est = GlobalLocalWeightEstimator(1)
        est.update(rng.normal(size=(4, 2)), np.ones(4))
        est.reset()
        assert not est.initialised
