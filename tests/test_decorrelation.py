"""Sample-weight learning: projections, convergence, constraints."""

import numpy as np
import pytest

from repro.core import SampleWeightLearner, project_weights, RandomFourierFeatures


@pytest.fixture
def rng():
    return np.random.default_rng(53)


def confounded_representations(rng, n=200):
    """Two dimensions correlated through a latent factor; extra noise dims."""
    y = rng.integers(0, 2, n)
    causal = y + 0.3 * rng.normal(size=n)
    aligned = rng.random(n) < 0.8
    spurious = np.where(aligned, y, 1 - y) + 0.3 * rng.normal(size=n)
    noise = rng.normal(size=(n, 2))
    return np.column_stack([spurious, causal, noise]), aligned


class TestProjectWeights:
    def test_mean_is_one(self, rng):
        w = project_weights(rng.uniform(0, 5, size=20))
        assert w.mean() == pytest.approx(1.0)

    def test_nonnegative(self, rng):
        w = project_weights(rng.normal(size=20))
        assert (w >= 0).all()

    def test_ceiling_respected_before_rescale(self):
        w = project_weights(np.array([100.0, 1.0, 1.0]), ceiling=5.0)
        assert w.max() <= 5.0 * (3 / 7.0) + 1e-9

    def test_all_negative_resets_to_uniform(self):
        w = project_weights(np.array([-1.0, -2.0]))
        np.testing.assert_allclose(w, 1.0)

    def test_idempotent(self, rng):
        w = project_weights(rng.uniform(0, 3, size=15))
        np.testing.assert_allclose(project_weights(w), w, atol=1e-12)


@pytest.fixture(params=["autograd", "fused"])
def backend(request):
    """Every learner-level behaviour must hold under both engines."""
    return request.param


class TestLearner:
    def test_loss_decreases(self, rng, backend):
        z, _ = confounded_representations(rng)
        rff = RandomFourierFeatures(num_functions=5, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=40, lr=0.05, l2_penalty=0.05, backend=backend)
        result = learner.learn(z)
        assert result.final_loss < result.initial_loss

    def test_constraints_hold(self, rng, backend):
        z, _ = confounded_representations(rng)
        rff = RandomFourierFeatures(num_functions=5, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=20, lr=0.1, backend=backend)
        result = learner.learn(z)
        assert result.weights.mean() == pytest.approx(1.0)
        assert result.weights.min() >= 0
        assert result.weights.max() <= learner.max_weight + 1e-9

    def test_upweights_counterexamples(self, rng, backend):
        """Samples breaking the train-time correlation gain weight."""
        z, aligned = confounded_representations(rng)
        rff = RandomFourierFeatures(num_functions=5, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=60, lr=0.05, l2_penalty=0.02, backend=backend)
        result = learner.learn(z)
        assert result.weights[~aligned].mean() > result.weights[aligned].mean()

    def test_fixed_global_weights_not_returned(self, rng, backend):
        z, _ = confounded_representations(rng, n=60)
        rff = RandomFourierFeatures(num_functions=2, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=5, lr=0.05, backend=backend)
        fixed = np.full(20, 2.0)
        result = learner.learn(z, fixed_weights=fixed)
        assert result.weights.shape == (40,)

    def test_all_fixed_raises(self, rng, backend):
        z, _ = confounded_representations(rng, n=10)
        rff = RandomFourierFeatures(rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=1, backend=backend)
        with pytest.raises(ValueError):
            learner.learn(z, fixed_weights=np.ones(10))

    def test_init_local_used(self, rng, backend):
        z, _ = confounded_representations(rng, n=50)
        rff = RandomFourierFeatures(num_functions=2, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=1, lr=1e-9, backend=backend)
        init = rng.uniform(0.5, 1.5, size=50)
        result = learner.learn(z, init_local=init)
        np.testing.assert_allclose(result.weights, project_weights(init), atol=1e-4)

    def test_rejects_zero_epochs(self, rng):
        rff = RandomFourierFeatures(rng=rng)
        with pytest.raises(ValueError):
            SampleWeightLearner(rff, epochs=0)

    def test_linear_mode_runs(self, rng, backend):
        z, _ = confounded_representations(rng, n=80)
        rff = RandomFourierFeatures(linear=True, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=10, lr=0.05, backend=backend)
        result = learner.learn(z)
        assert np.isfinite(result.final_loss)

    def test_standardisation_handles_large_scales(self, rng, backend):
        z, _ = confounded_representations(rng, n=100)
        z_scaled = z * 1000.0
        rff = RandomFourierFeatures(num_functions=3, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=15, lr=0.05, backend=backend)
        result = learner.learn(z_scaled)
        assert result.final_loss < result.initial_loss

    def test_loss_trajectory_recorded(self, rng, backend):
        z, _ = confounded_representations(rng, n=60)
        rff = RandomFourierFeatures(num_functions=2, rng=np.random.default_rng(1))
        learner = SampleWeightLearner(rff, epochs=7, backend=backend)
        result = learner.learn(z)
        assert len(result.losses) == 7
        assert result.final_loss == result.losses[-1]
