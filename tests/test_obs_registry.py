"""Metrics registry: counters/gauges/histograms, threads, exposition.

Covers :mod:`repro.obs.registry`:

* family semantics — get-or-create idempotence, kind/label-set conflict
  errors, labelled series isolation;
* **thread safety** — N writer threads hammering one counter while
  reader threads snapshot concurrently must neither lose an increment
  nor deadlock (the design contract: writers serialise on a per-series
  lock, readers never take it);
* Prometheus text exposition — ``# HELP`` / ``# TYPE`` lines, label
  escaping (backslash, double quote, newline), histogram rendering as
  cumulative ``_bucket{le=...}`` + ``_sum`` / ``_count``;
* pull-time collectors and :func:`render_prometheus` extra sources;
* the :data:`FLAGS.metrics` kill switch making every mutator a no-op.
"""

import json
import re
import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    FLAGS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    render_prometheus,
)
from repro.obs.registry import registry as global_registry

# One Prometheus text-format sample line: name{labels} value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


@pytest.fixture
def reg():
    return Registry()


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("monotone_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)

    def test_labelled_series_are_independent(self, reg):
        c = reg.counter("requests_total", labelnames=("outcome",))
        c.inc(outcome="ok")
        c.inc(3, outcome="error")
        assert c.value(outcome="ok") == 1.0
        assert c.value(outcome="error") == 3.0
        assert c.value(outcome="never_seen") == 0.0

    def test_missing_or_extra_labels_rejected(self, reg):
        c = reg.counter("labelled_total", labelnames=("path",))
        with pytest.raises(ValueError, match="requires labels"):
            c.inc()
        plain = reg.counter("plain_total")
        with pytest.raises(ValueError, match="takes no labels"):
            plain.inc(path="x")

    def test_timer_accumulates_seconds(self, reg):
        c = reg.counter("work_seconds_total")
        with c.time():
            pass
        assert 0.0 < c.value() < 1.0

    def test_invalid_metric_name_rejected(self, reg):
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad-name")


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("inflight")
        g.set(5.0)
        g.inc()
        g.dec(2.0)
        assert g.value() == pytest.approx(4.0)


class TestHistogram:
    def test_cumulative_bucket_semantics(self, reg):
        h = reg.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.value()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 3        # cumulative
        assert snap["buckets"][10.0] == 4
        assert snap["buckets"][float("inf")] == 5

    def test_render_emits_bucket_sum_count(self, reg):
        h = reg.histogram("dur_seconds", help="how long", buckets=(0.5, 2.0))
        h.observe(1.0)
        text = reg.render()
        assert "# HELP dur_seconds how long" in text
        assert "# TYPE dur_seconds histogram" in text
        assert 'dur_seconds_bucket{le="0.5"} 0' in text
        assert 'dur_seconds_bucket{le="2"} 1' in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text
        assert "dur_seconds_sum 1" in text
        assert "dur_seconds_count 1" in text

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError, match="bucket"):
            Histogram("empty", buckets=())

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistrySemantics:
    def test_get_or_create_is_idempotent(self, reg):
        a = reg.counter("same_total", labelnames=("x",))
        b = reg.counter("same_total", labelnames=("x",))
        assert a is b

    def test_kind_conflict_is_an_error(self, reg):
        reg.counter("conflicted")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("conflicted")

    def test_labelset_conflict_is_an_error(self, reg):
        reg.counter("relabel_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("relabel_total", labelnames=("a", "b"))

    def test_snapshot_is_json_serialisable(self, reg):
        reg.counter("c_total", labelnames=("k",)).inc(k="v")
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped["c_total"]["kind"] == "counter"
        assert round_tripped["c_total"]["series"][0]["labels"] == {"k": "v"}

    def test_reset_drops_series_keeps_families(self, reg):
        c = reg.counter("resettable_total")
        c.inc(7)
        reg.reset()
        assert c.value() == 0.0
        assert reg.counter("resettable_total") is c

    def test_collector_samples_merge_into_render_and_snapshot(self, reg):
        def source():
            yield ("external_total", "counter", "from a collector",
                   [({"src": "unit"}, 11.0)])

        reg.register_collector(source)
        reg.register_collector(source)  # idempotent
        text = reg.render()
        assert text.count("# TYPE external_total counter") == 1
        assert 'external_total{src="unit"} 11' in text
        assert reg.snapshot()["external_total"]["series"] == [
            {"labels": {"src": "unit"}, "value": 11.0}
        ]
        reg.unregister_collector(source)
        assert "external_total" not in reg.render()


class TestPrometheusText:
    def test_label_value_escaping(self, reg):
        c = reg.counter("escaped_total", labelnames=("path",))
        c.inc(path='a\\b"c\nd')
        text = reg.render()
        assert 'escaped_total{path="a\\\\b\\"c\\nd"} 1' in text

    def test_help_escaping(self, reg):
        reg.counter("helpful_total", help="line one\nline two \\ end")
        assert "# HELP helpful_total line one\\nline two \\\\ end" in reg.render()

    def test_every_sample_line_is_well_formed(self, reg):
        c = reg.counter("a_total", labelnames=("l",))
        c.inc(l="v1")
        c.inc(l="v2")
        reg.gauge("b").set(2.5)
        reg.histogram("c_seconds", buckets=(1.0,)).observe(0.1)
        for line in reg.render().splitlines():
            if not line or line.startswith("#"):
                continue
            assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"

    def test_render_prometheus_merges_extra_collectors(self):
        def extra():
            yield ("adhoc_gauge", "gauge", "request-scoped", [({}, 1.0)])

        text = render_prometheus(extra_collectors=[extra])
        assert "# TYPE adhoc_gauge gauge" in text
        assert "adhoc_gauge 1" in text
        # The global registry's families render in the same scrape.
        assert text.endswith("\n")


class TestFlagsKillSwitch:
    def test_disabled_metrics_drop_every_mutation(self, reg):
        c = reg.counter("gated_total")
        g = reg.gauge("gated")
        h = reg.histogram("gated_seconds", buckets=(1.0,))
        FLAGS.metrics = False
        try:
            c.inc()
            g.set(5.0)
            h.observe(0.5)
        finally:
            FLAGS.metrics = True
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.value()["count"] == 0


class TestThreadSafety:
    def test_concurrent_writers_lose_no_increments(self, reg):
        """8 writer threads x 2000 incs with 2 concurrent snapshot readers:
        the final count must be exact (an unguarded += would lose updates)
        and no reader may block or crash."""
        c = reg.counter("stress_total", labelnames=("t",))
        h = reg.histogram("stress_seconds", buckets=(0.5, 1.0))
        writers, per_writer = 8, 2000
        stop_reading = threading.Event()
        reader_errors = []

        def write(tid):
            for _ in range(per_writer):
                c.inc(t=str(tid % 2))
                h.observe(0.25)

        def read():
            while not stop_reading.is_set():
                try:
                    snap = reg.snapshot()
                    for family in snap.values():
                        json.dumps(family)
                    reg.render()
                except Exception as err:  # pragma: no cover - failure path
                    reader_errors.append(err)
                    return

        threads = [threading.Thread(target=write, args=(i,)) for i in range(writers)]
        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in readers + threads:
            t.start()
        for t in threads:
            t.join()
        stop_reading.set()
        for t in readers:
            t.join()
        assert not reader_errors
        total = c.value(t="0") + c.value(t="1")
        assert total == writers * per_writer
        assert h.value()["count"] == writers * per_writer

    def test_global_registry_families_exist(self):
        """The instrumented modules register their families at import; the
        global registry must render without error in any test order."""
        text = global_registry.render()
        assert isinstance(text, str) and text.endswith("\n")
