"""MNIST-75SP-like dataset: rendering, superpixels, feature shifts."""

import numpy as np
import pytest

from repro.datasets import make_mnist75sp
from repro.datasets.mnist75sp import render_digit, image_to_superpixel_graph, DIGIT_STROKES
from repro.graph.utils import is_undirected


@pytest.fixture
def rng():
    return np.random.default_rng(73)


class TestRendering:
    def test_canvas_shape_and_range(self, rng):
        img = render_digit(3, rng)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_all_digits_defined(self):
        assert set(DIGIT_STROKES) == set(range(10))

    def test_invalid_digit(self, rng):
        with pytest.raises(ValueError):
            render_digit(11, rng)

    def test_renders_nonempty_foreground(self, rng):
        for digit in range(10):
            img = render_digit(digit, rng)
            assert (img > 0.1).sum() > 20, f"digit {digit} nearly blank"

    def test_jitter_varies_instances(self, rng):
        a = render_digit(7, rng)
        b = render_digit(7, rng)
        assert not np.allclose(a, b)


class TestSuperpixelGraph:
    def test_node_budget(self, rng):
        img = render_digit(0, rng)
        g = image_to_superpixel_graph(img, rng, max_superpixels=75)
        assert g.num_nodes <= 75

    def test_features_are_rgb_plus_coords(self, rng):
        img = render_digit(5, rng)
        g = image_to_superpixel_graph(img, rng)
        assert g.num_features == 5
        # Grayscale: three identical colour channels.
        np.testing.assert_allclose(g.x[:, 0], g.x[:, 1])
        np.testing.assert_allclose(g.x[:, 1], g.x[:, 2])
        # Coordinates normalised to [0, 1].
        assert g.x[:, 3:].min() >= 0.0 and g.x[:, 3:].max() <= 1.0

    def test_graph_connected_enough(self, rng):
        img = render_digit(8, rng)
        g = image_to_superpixel_graph(img, rng, knn=6)
        assert is_undirected(g.edge_index)
        assert g.num_edges >= g.num_nodes  # kNN with k=6 is denser than a tree

    def test_blank_image_raises(self, rng):
        with pytest.raises(ValueError):
            image_to_superpixel_graph(np.zeros((28, 28)), rng)


class TestDataset:
    def test_two_test_variants_share_structure(self, rng):
        ds = make_mnist75sp(rng, num_train=6, num_valid=2, num_test=4)
        noise, color = ds.tests["Test(noise)"], ds.tests["Test(color)"]
        assert len(noise) == len(color) == 4
        for gn, gc in zip(noise, color):
            np.testing.assert_array_equal(gn.edge_index, gc.edge_index)
            assert gn.y == gc.y

    def test_noise_is_grayscale_color_is_not(self, rng):
        ds = make_mnist75sp(rng, num_train=4, num_valid=2, num_test=3)
        gn = ds.tests["Test(noise)"][0]
        gc = ds.tests["Test(color)"][0]
        # Grayscale noise keeps channels tied; colour noise decouples them.
        np.testing.assert_allclose(gn.x[:, 0], gn.x[:, 1])
        assert not np.allclose(gc.x[:, 0], gc.x[:, 1])

    def test_coordinates_unchanged_by_noise(self, rng):
        ds = make_mnist75sp(rng, num_train=4, num_valid=2, num_test=3)
        gn = ds.tests["Test(noise)"][0]
        assert gn.x[:, 3:].min() >= 0.0 and gn.x[:, 3:].max() <= 1.0

    def test_labels_cover_digits(self, rng):
        ds = make_mnist75sp(rng, num_train=60, num_valid=5, num_test=5)
        labels = {g.y for g in ds.train}
        assert len(labels) >= 7  # most digits present in a sample of 60

    def test_info(self, rng):
        ds = make_mnist75sp(rng, num_train=4, num_valid=2, num_test=2)
        assert ds.info.split_method == "feature"
        assert ds.info.num_classes == 10
        assert ds.info.feature_dim == 5
