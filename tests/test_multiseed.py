"""Batched multi-seed engine: parity with sequential runs, determinism.

The contract under test (see docs/ARCHITECTURE.md): `fit_many(batched=
True)` trains K seed-stacked models whose results match K sequential
`fit` runs over the same mini-batch stream — parameters bitwise under
deterministic settings — and both paths are deterministic under fixed
seeds.
"""

import warnings

import numpy as np
import pytest

from encoder_specs import ENCODER_SPECS, STACKABLE_SPECS, encoder_spec, spec_params
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core import OODGNN, OODGNNConfig, OODGNNTrainer
from repro.encoders import build_model, SeedGraphClassifier
from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.nn import layers as nn_layers
from repro.nn.layers import stack_seed_modules, try_stack_seed_modules
from repro.nn.losses import seed_prediction_loss, weighted_prediction_loss
from repro.nn.module import Module
from repro.nn.optim import clip_grad_norm, clip_grad_norm_per_seed
from repro.training import Trainer, TrainerConfig, evaluate_model, evaluate_model_per_seed

SEEDS = (0, 1, 2)


def toy_graphs(n=40, seed=7):
    rng = np.random.default_rng(seed)
    graphs = []
    for i in range(n):
        label = i % 2
        g = erdos_renyi(int(rng.integers(5, 10)), 0.7 if label else 0.15, rng)
        g.y = label
        graphs.append(g)
    return graphs


def gin_factory(seed, out_dim=2, num_layers=2):
    return build_model(
        "gin", 1, out_dim, np.random.default_rng((seed + 1) * 7919),
        hidden_dim=8, num_layers=num_layers,
    )


def gcn_factory(seed):
    return build_model("gcn", 1, 2, np.random.default_rng((seed + 1) * 7919), hidden_dim=8, num_layers=2)


def assert_params_equal(model_a, model_b, **kwargs):
    pa, pb = dict(model_a.named_parameters()), dict(model_b.named_parameters())
    assert set(pa) == set(pb)
    for name in pa:
        np.testing.assert_array_equal(pa[name].data, pb[name].data, err_msg=name, **kwargs)


class TestSeedStacking:
    def test_forward_matches_per_seed_models_bitwise(self):
        graphs = toy_graphs(12)
        batch = GraphBatch.from_graphs(graphs)
        models = [gin_factory(s) for s in SEEDS]
        stacked = stack_seed_modules(models)
        assert isinstance(stacked, SeedGraphClassifier)
        logits = stacked(batch)
        assert logits.shape == (len(SEEDS), batch.num_graphs, 2)
        for k, model in enumerate(models):
            np.testing.assert_array_equal(model(batch).data, logits.data[k])

    def test_gradients_match_per_seed_models_bitwise(self):
        graphs = toy_graphs(12)
        batch = GraphBatch.from_graphs(graphs)
        models = [gin_factory(s) for s in SEEDS]
        stacked = stack_seed_modules(models)
        total, per_seed = seed_prediction_loss(stacked(batch), batch.y, "multiclass")
        total.backward()
        stacked_params = dict(stacked.named_parameters())
        for k, model in enumerate(models):
            loss = weighted_prediction_loss(model(batch), batch.y, "multiclass")
            np.testing.assert_allclose(float(loss.data), per_seed[k], rtol=1e-14)
            loss.backward()
            for name, p in model.named_parameters():
                np.testing.assert_array_equal(stacked_params[name].grad[k], p.grad, err_msg=name)

    def test_gcn_stacking_matches(self):
        graphs = toy_graphs(10)
        batch = GraphBatch.from_graphs(graphs)
        models = [gcn_factory(s) for s in SEEDS]
        stacked = stack_seed_modules(models)
        logits = stacked(batch)
        for k, model in enumerate(models):
            np.testing.assert_array_equal(model(batch).data, logits.data[k])

    def test_seed_state_dict_roundtrip(self):
        models = [gin_factory(s) for s in SEEDS]
        stacked = stack_seed_modules(models)
        fresh = gin_factory(99)
        fresh.load_state_dict(stacked.seed_state_dict(1))
        assert_params_equal(fresh, models[1])

    def test_sync_into_copies_batch_norm_statistics(self):
        graphs = toy_graphs(16)
        batch = GraphBatch.from_graphs(graphs)
        models = [gin_factory(s) for s in SEEDS]
        stacked = stack_seed_modules(models)
        stacked(batch)  # advance the stacked running statistics
        fresh = gin_factory(99)
        stacked.sync_into(0, fresh)
        ref = models[0]
        ref(batch)  # advance the per-seed statistics identically
        fresh.eval(), ref.eval()
        np.testing.assert_array_equal(fresh(batch).data, ref(batch).data)

    def test_unsupported_architecture_raises(self):
        models = [
            build_model("factorgcn", 1, 2, np.random.default_rng(s), hidden_dim=8, num_layers=2)
            for s in SEEDS
        ]
        with pytest.raises(TypeError, match="no multi-seed stacker"):
            stack_seed_modules(models)

    def test_heterogeneous_modules_raise(self):
        with pytest.raises(TypeError, match="heterogeneous"):
            stack_seed_modules([gin_factory(0), gcn_factory(1)])

    def test_evaluate_model_per_seed_matches_sequential(self):
        graphs = toy_graphs(20)
        models = [gin_factory(s) for s in SEEDS]
        stacked = stack_seed_modules(models)
        scores = evaluate_model_per_seed(stacked, graphs, "accuracy")
        for k, model in enumerate(models):
            assert scores[k] == evaluate_model(model, graphs, "accuracy")


class TestRosterParity:
    """The full-zoo contract: every stackable spec is bitwise batched==sequential.

    Parametrised over the shared :data:`conftest.ENCODER_SPECS` registry so
    a new encoder cannot be registered without declaring (and proving) its
    seed-stacking behaviour here.
    """

    def test_stackable_flags_match_registry(self):
        """Each spec's `stackable` flag agrees with the live stacker registry."""
        for spec in ENCODER_SPECS:
            models = [spec.factory(1, 2)(s) for s in (0, 1)]
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                stacked = try_stack_seed_modules(models)
            assert (stacked is not None) == spec.stackable, spec.name

    @pytest.mark.parametrize("spec", spec_params(STACKABLE_SPECS))
    def test_forward_matches_per_seed_models_bitwise(self, spec):
        batch = GraphBatch.from_graphs(toy_graphs(12))
        models = [spec.factory(1, 2)(s) for s in SEEDS]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any fallback warning fails the test
            stacked = stack_seed_modules(models)
            logits = stacked(batch)
        assert logits.shape == (len(SEEDS), batch.num_graphs, 2)
        for k, model in enumerate(models):
            np.testing.assert_array_equal(
                model(batch).data, logits.data[k], err_msg=f"{spec.name} seed {k}"
            )

    @pytest.mark.parametrize("spec", spec_params(STACKABLE_SPECS))
    def test_gradients_match_per_seed_models_bitwise(self, spec):
        batch = GraphBatch.from_graphs(toy_graphs(12))
        models = [spec.factory(1, 2)(s) for s in SEEDS]
        stacked = stack_seed_modules(models)
        total, per_seed = seed_prediction_loss(stacked(batch), batch.y, "multiclass")
        total.backward()
        stacked_params = dict(stacked.named_parameters())
        for k, model in enumerate(models):
            loss = weighted_prediction_loss(model(batch), batch.y, "multiclass")
            loss.backward()
            for name, p in model.named_parameters():
                np.testing.assert_array_equal(
                    stacked_params[name].grad[k], p.grad, err_msg=f"{spec.name} {name} seed {k}"
                )

    @pytest.mark.parametrize("spec", spec_params(STACKABLE_SPECS))
    def test_fit_many_batched_matches_sequential_bitwise(self, spec):
        graphs = toy_graphs(24)
        results = {}
        for batched in (True, False):
            trainer = Trainer(
                None, "multiclass", TrainerConfig(epochs=2, batch_size=12),
                np.random.default_rng(3),
            )
            results[batched] = trainer.fit_many(
                graphs, seeds=SEEDS, model_factory=spec.factory(1, 2), batched=batched
            )
        for k in range(len(SEEDS)):
            assert (
                results[True].histories[k].train_loss == results[False].histories[k].train_loss
            ), f"{spec.name} seed {k}"
            assert_params_equal(results[True].models[k], results[False].models[k])

    def test_eight_seed_gat_roster_trains_batched_without_fallback(self):
        """ISSUE 7 acceptance: a default `fit_many` on an 8-seed GAT roster
        runs the batched engine end to end with no sequential-fallback
        warning."""
        nn_layers._SEQUENTIAL_FALLBACK_WARNED.clear()
        trainer = Trainer(
            None, "multiclass", TrainerConfig(epochs=1, batch_size=12),
            np.random.default_rng(3),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = trainer.fit_many(
                toy_graphs(24), seeds=tuple(range(8)),
                model_factory=encoder_spec("gat").factory(1, 2),
            )
        assert len(result.models) == 8


class TestSeedPrimitives:
    def test_seed_linear_shared_and_per_seed(self):
        rng = np.random.default_rng(0)
        w = Tensor(rng.normal(size=(3, 4, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        shared = rng.normal(size=(7, 4))
        out = F.seed_linear(Tensor(shared), w, b)
        assert out.shape == (3, 7, 5)
        for k in range(3):
            np.testing.assert_allclose(out.data[k], shared @ w.data[k] + b.data[k])
        per_seed = Tensor(rng.normal(size=(3, 7, 4)), requires_grad=True)
        out2 = F.seed_linear(per_seed, w, b)
        out2.backward(np.ones_like(out2.data))
        assert per_seed.grad.shape == (3, 7, 4)
        assert w.grad.shape == (3, 4, 5)

    def test_seed_gather_and_segment_sum_match_per_seed(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 9, 6))
        idx = rng.integers(0, 9, size=14)
        seg = np.sort(rng.integers(0, 5, size=14))
        gathered = F.seed_gather(Tensor(x), idx)
        summed = F.seed_segment_sum(Tensor(gathered.data), seg, 5)
        for k in range(4):
            np.testing.assert_array_equal(gathered.data[k], x[k][idx])
            np.testing.assert_allclose(
                summed.data[k], F.segment_sum(Tensor(x[k][idx]), seg, 5).data
            )

    def test_scatter_and_gather_enforce_index_bounds(self):
        # The fast kernels bypass numpy's fancy-index checks; the wrappers
        # must keep np.add.at / x[ids] semantics: raise out of range, wrap
        # negatives.
        with pytest.raises(IndexError):
            F.segment_sum(Tensor(np.ones((3, 2))), np.array([0, 1, 5]), 2)
        with pytest.raises(IndexError):
            F.seed_gather(Tensor(np.ones((2, 4, 3))), np.array([0, 9]))
        with pytest.raises(IndexError):
            F.seed_segment_sum(Tensor(np.ones((2, 4, 3))), np.array([0, 1, 7]), 3)
        x = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        x[np.array([-1, 0, 2])].sum().backward()
        expected = np.zeros((4, 3))
        np.add.at(expected, np.array([-1, 0, 2]), np.ones((3, 3)))
        np.testing.assert_array_equal(x.grad, expected)

    def test_scatter_add_rows_matches_add_at(self):
        rng = np.random.default_rng(2)
        for shape in [(30,), (30, 5), (30, 4, 3)]:
            values = rng.normal(size=shape)
            ids = rng.integers(0, 11, size=30)
            expected = np.zeros((11,) + shape[1:])
            np.add.at(expected, ids, values)
            out = np.zeros((11,) + shape[1:])
            F.scatter_add_rows(out, ids, values)
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_clip_grad_norm_per_seed_matches_sequential(self):
        rng = np.random.default_rng(3)
        stacked_grads = [rng.normal(size=(3, 4, 4)) * 3, rng.normal(size=(3, 4)) * 3]
        for k in range(3):
            per_seed = [Tensor(np.zeros((4, 4)), requires_grad=True), Tensor(np.zeros(4), requires_grad=True)]
            for p, g in zip(per_seed, stacked_grads):
                p.grad = g[k].copy()
            clip_grad_norm(per_seed, 1.0)
            stacked = [Tensor(np.zeros(g.shape), requires_grad=True) for g in stacked_grads]
            copies = [g.copy() for g in stacked_grads]
            for p, g in zip(stacked, copies):
                p.grad = g
            clip_grad_norm_per_seed(stacked, 1.0)
            for p_seq, g_stacked in zip(per_seed, copies):
                np.testing.assert_array_equal(p_seq.grad, g_stacked[k])

    def test_seed_prediction_loss_binary_and_regression(self):
        rng = np.random.default_rng(4)
        logits = Tensor(rng.normal(size=(2, 6, 3)))
        targets = rng.integers(0, 2, size=(6, 3)).astype(np.float64)
        targets[0, 1] = np.nan
        total, per_seed = seed_prediction_loss(logits, targets, "binary")
        for k in range(2):
            ref = weighted_prediction_loss(Tensor(logits.data[k]), targets, "binary")
            np.testing.assert_allclose(per_seed[k], float(ref.data), rtol=1e-12)
        preds = Tensor(rng.normal(size=(2, 6, 1)))
        y = rng.normal(size=(6, 1))
        total, per_seed = seed_prediction_loss(preds, y, "regression")
        for k in range(2):
            ref = weighted_prediction_loss(Tensor(preds.data[k]), y, "regression")
            np.testing.assert_allclose(per_seed[k], float(ref.data), rtol=1e-12)


class TestFitManyParity:
    def _fit(self, batched, graphs, seeds=SEEDS, epochs=4, eval_every=0):
        trainer = Trainer(
            None, "multiclass",
            TrainerConfig(epochs=epochs, batch_size=16, eval_every=eval_every),
            np.random.default_rng(3),
        )
        return trainer.fit_many(
            graphs[:32], graphs[32:] if eval_every else None,
            seeds=seeds, model_factory=gin_factory, batched=batched,
        )

    def test_batched_matches_sequential_bitwise(self):
        graphs = toy_graphs(40)
        res_b = self._fit(True, graphs)
        res_s = self._fit(False, graphs)
        for k in range(len(SEEDS)):
            np.testing.assert_allclose(
                res_b.histories[k].train_loss, res_s.histories[k].train_loss, rtol=1e-12
            )
            assert_params_equal(res_b.models[k], res_s.models[k])

    def test_parity_with_validation_model_selection(self):
        graphs = toy_graphs(48)
        res_b = self._fit(True, graphs, eval_every=1)
        res_s = self._fit(False, graphs, eval_every=1)
        for k in range(len(SEEDS)):
            assert res_b.histories[k].valid_metric == res_s.histories[k].valid_metric
            assert res_b.histories[k].best_metric == res_s.histories[k].best_metric
            assert_params_equal(res_b.models[k], res_s.models[k])

    def test_deterministic_under_fixed_seeds(self):
        graphs = toy_graphs(40)
        res_a = self._fit(True, graphs)
        res_b = self._fit(True, graphs)
        for k in range(len(SEEDS)):
            assert res_a.histories[k].train_loss == res_b.histories[k].train_loss
            assert_params_equal(res_a.models[k], res_b.models[k])

    def test_batched_models_evaluate_identically(self):
        graphs = toy_graphs(40)
        res_b = self._fit(True, graphs)
        res_s = self._fit(False, graphs)
        for k in range(len(SEEDS)):
            acc_b = evaluate_model(res_b.models[k], graphs[32:], "accuracy")
            acc_s = evaluate_model(res_s.models[k], graphs[32:], "accuracy")
            assert acc_b == acc_s

    def test_single_seed_batched_matches_plain_fit(self):
        graphs = toy_graphs(40)
        res = self._fit(True, graphs, seeds=(5,))
        model = gin_factory(5)
        import copy as _copy

        rng = np.random.default_rng(3)
        trainer = Trainer(
            model, "multiclass", TrainerConfig(epochs=4, batch_size=16), _copy.deepcopy(rng)
        )
        trainer.fit(graphs[:32])
        assert_params_equal(res.models[0], model)

    def test_empty_seeds_raise(self):
        trainer = Trainer(
            None, "multiclass", TrainerConfig(epochs=1), np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="at least one seed"):
            trainer.fit_many(toy_graphs(8), seeds=(), model_factory=gin_factory)


class _UnstackableClassifier(Module):
    """Synthetic model type with no registered seed stacker.

    Wraps a perfectly stackable GIN so the sequential fallback path still
    trains/serves normally; only the *type* is outside the registry.
    """

    def __init__(self, seed):
        super().__init__()
        self.inner = gin_factory(seed)

    def forward(self, batch):
        return self.inner(batch)


class TestSequentialFallbackWarning:
    """Unsupported encoders downgrade to sequential runs — loudly, once.

    FactorGCN is the real-roster example (its per-factor GEMV attention is
    deliberately unregistered, see conftest.ENCODER_SPECS); the synthetic
    `_UnstackableClassifier` exercises the same path for a model type the
    registry has never heard of, in both training and serving contexts.
    """

    _factorgcn_factory = staticmethod(encoder_spec("factorgcn").factory(1, 2))

    def _fit(self, graphs, batched, factory=None):
        trainer = Trainer(
            None, "multiclass", TrainerConfig(epochs=2, batch_size=12), np.random.default_rng(3)
        )
        return trainer.fit_many(
            graphs, seeds=SEEDS, model_factory=factory or self._factorgcn_factory,
            batched=batched,
        )

    def test_try_stack_warns_once_naming_the_encoder(self):
        nn_layers._SEQUENTIAL_FALLBACK_WARNED.clear()
        models = [self._factorgcn_factory(s) for s in SEEDS]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert try_stack_seed_modules(models) is None
            assert try_stack_seed_modules(models) is None  # second call stays silent
        relevant = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        message = str(relevant[0].message)
        assert "FactorGCNConv" in message and "sequential" in message

    def test_fit_many_falls_back_with_warning_and_matches_sequential(self):
        nn_layers._SEQUENTIAL_FALLBACK_WARNED.clear()
        graphs = toy_graphs(24)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res_b = self._fit(graphs, batched=True)
        assert any(
            issubclass(w.category, RuntimeWarning) and "sequential" in str(w.message)
            for w in caught
        )
        res_s = self._fit(graphs, batched=False)
        for k in range(len(SEEDS)):
            assert res_b.histories[k].train_loss == res_s.histories[k].train_loss
            assert_params_equal(res_b.models[k], res_s.models[k])

    def test_synthetic_module_fit_many_warns_once_and_matches_sequential(self):
        nn_layers._SEQUENTIAL_FALLBACK_WARNED.clear()
        graphs = toy_graphs(24)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res_b = self._fit(graphs, batched=True, factory=_UnstackableClassifier)
            self._fit(graphs, batched=True, factory=_UnstackableClassifier)
        relevant = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning) and "_UnstackableClassifier" in str(w.message)
        ]
        assert len(relevant) == 1  # keyed once per context/model pair
        assert "training" in str(relevant[0].message)
        res_s = self._fit(graphs, batched=False, factory=_UnstackableClassifier)
        for k in range(len(SEEDS)):
            assert_params_equal(res_b.models[k], res_s.models[k])

    def test_synthetic_module_serving_context_warns_separately(self):
        """The serving context has its own one-time warning key and wording."""
        nn_layers._SEQUENTIAL_FALLBACK_WARNED.clear()
        models = [_UnstackableClassifier(s) for s in (0, 1)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert try_stack_seed_modules(models, context="training") is None
            assert try_stack_seed_modules(models, context="serving") is None
            assert try_stack_seed_modules(models, context="serving") is None
        relevant = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 2  # one per context, never per call
        serving = str(relevant[1].message)
        assert "_UnstackableClassifier" in serving and "serving" in serving

    def test_ood_gnn_fit_many_falls_back_with_warning(self):
        from repro.encoders.base import StackedEncoder
        from repro.encoders.conv import FactorGCNConv

        nn_layers._SEQUENTIAL_FALLBACK_WARNED.clear()
        cfg = OODGNNConfig(
            hidden_dim=8, num_layers=2, epochs=1, batch_size=12,
            reweight_epochs=2, warmup_fraction=1.0,
        )

        def factory(seed):
            rng = np.random.default_rng((seed + 1) * 7919)
            encoder = StackedEncoder(1, 8, 2, lambda i, o: FactorGCNConv(i, o, 2, rng), rng)
            return OODGNN(1, 2, rng, config=cfg, encoder=encoder)

        trainer = OODGNNTrainer(None, "multiclass", np.random.default_rng(3), config=cfg)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = trainer.fit_many(
                toy_graphs(24), seeds=(0, 1), model_factory=factory, batched=True
            )
        assert any(
            issubclass(w.category, RuntimeWarning) and "FactorGCNConv" in str(w.message)
            for w in caught
        )
        assert len(result.models) == 2
        assert all(len(h.train_loss) == 1 for h in result.histories)


class TestOODGNNFitManyParity:
    def _fit(self, batched, graphs, cfg, batched_reweight=True):
        trainer = OODGNNTrainer(None, "multiclass", np.random.default_rng(3), config=cfg)
        return trainer.fit_many(
            graphs[:32], graphs[32:], eval_every=2, seeds=SEEDS, batched=batched,
            batched_reweight=batched_reweight,
            model_factory=lambda s: OODGNN(1, 2, np.random.default_rng((s + 1) * 7919), config=cfg),
        )

    def _config(self):
        return OODGNNConfig(
            hidden_dim=8, num_layers=2, epochs=4, batch_size=16,
            reweight_epochs=3, warmup_fraction=0.25,
        )

    def test_sequential_reweight_matches_sequential(self):
        """The escape hatch preserves the PR-2 near-bitwise parity contract."""
        graphs = toy_graphs(40)
        cfg = self._config()
        res_b = self._fit(True, graphs, cfg, batched_reweight=False)
        res_s = self._fit(False, graphs, cfg)
        for k in range(len(SEEDS)):
            hb, hs = res_b.histories[k], res_s.histories[k]
            np.testing.assert_allclose(hb.train_loss, hs.train_loss, rtol=1e-9)
            np.testing.assert_allclose(hb.decorrelation_loss, hs.decorrelation_loss, rtol=1e-9)
            np.testing.assert_allclose(hb.final_weights, hs.final_weights, rtol=1e-8, atol=1e-10)
            pb = dict(res_b.models[k].named_parameters())
            ps = dict(res_s.models[k].named_parameters())
            for name in pb:
                np.testing.assert_allclose(
                    pb[name].data, ps[name].data, rtol=1e-8, atol=1e-11, err_msg=f"seed {k} {name}"
                )

    def test_batched_reweight_matches_sequential(self):
        """The default seed-batched inner loop tracks the sequential runs.

        The stacked closed-form loop matches per-seed loops to ~1e-8 per
        inner epoch (asserted directly in tests/test_seed_batched_reweight.py);
        over a full training run those rounding-level differences compound
        slightly, hence the marginally looser end-to-end bounds here.
        """
        graphs = toy_graphs(40)
        cfg = self._config()
        res_b = self._fit(True, graphs, cfg, batched_reweight=True)
        res_s = self._fit(False, graphs, cfg)
        for k in range(len(SEEDS)):
            hb, hs = res_b.histories[k], res_s.histories[k]
            np.testing.assert_allclose(hb.train_loss, hs.train_loss, rtol=1e-7)
            np.testing.assert_allclose(hb.decorrelation_loss, hs.decorrelation_loss, rtol=1e-7)
            np.testing.assert_allclose(hb.final_weights, hs.final_weights, rtol=1e-6, atol=1e-8)
            pb = dict(res_b.models[k].named_parameters())
            ps = dict(res_s.models[k].named_parameters())
            for name in pb:
                np.testing.assert_allclose(
                    pb[name].data, ps[name].data, rtol=1e-6, atol=1e-8, err_msg=f"seed {k} {name}"
                )
