"""Model artifacts: spec/schema round-trips, bitwise save-load-predict parity.

Covers the serving bundle contract (docs/ARCHITECTURE.md "Inference and
serving"): an artifact reconstructs its model(s) without user code, and
the reconstructed eval forward is bitwise identical to the in-memory
model — including batch-norm running statistics and PNA's degree-scale
buffer, and for seed ensembles sliced out of a stacked
``SeedGraphClassifier``.
"""

import numpy as np
import pytest

from repro.core import OODGNN, OODGNNConfig
from repro.encoders import build_model
from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.nn.layers import stack_seed_modules
from repro.serve import ARTIFACT_FORMAT_VERSION, FeatureSchema, ModelArtifact, ModelSpec
from repro.training.loop import predict

FEATURE_DIM, OUT_DIM = 5, 3

SCHEMA = FeatureSchema(
    feature_dim=FEATURE_DIM, out_dim=OUT_DIM, task_type="multiclass",
    metric="accuracy", num_classes=OUT_DIM, dataset="unit-test",
)

# Roster lists come from the shared spec registry (tests/encoder_specs.py):
# everything except FactorGCN has a seed-stacked variant.
from encoder_specs import STACKABLE_SPECS, UNSTACKABLE_SPECS

STACKABLE = tuple(spec.name for spec in STACKABLE_SPECS)
UNSTACKABLE = tuple(spec.name for spec in UNSTACKABLE_SPECS)


def make_graphs(rng, count=8):
    graphs = []
    for i in range(count):
        g = erdos_renyi(int(rng.integers(6, 14)), 0.5, rng)
        g.x = rng.normal(size=(g.num_nodes, FEATURE_DIM))
        g.y = int(i % OUT_DIM)
        graphs.append(g)
    return graphs


def warm_up(model, graphs):
    """One train-mode forward so batch-norm running stats leave their init.

    Without this the buffer round-trip would pass vacuously (zeros/ones
    would survive any broken persistence).
    """
    model.train()
    model(GraphBatch.from_graphs(graphs))
    model.eval()
    return model


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestSpecSchema:
    def test_schema_round_trip(self):
        assert FeatureSchema.from_dict(SCHEMA.to_dict()) == SCHEMA

    def test_schema_from_info(self):
        from repro.datasets.base import DatasetInfo

        info = DatasetInfo(
            name="x", task_type="multiclass", num_tasks=1, metric="accuracy",
            split_method="size", feature_dim=4, num_classes=7,
        )
        schema = FeatureSchema.from_info(info)
        assert schema.out_dim == 7 and schema.feature_dim == 4

    def test_schema_rejects_wrong_feature_dim(self, rng):
        g = make_graphs(rng, 1)[0]
        bad = FeatureSchema(feature_dim=FEATURE_DIM + 1, out_dim=OUT_DIM)
        with pytest.raises(ValueError, match="node features"):
            bad.validate_graph(g)

    def test_spec_round_trip(self):
        spec = ModelSpec("topkpool", hidden_dim=16, num_layers=2, kwargs={"pool_ratio": 0.7})
        assert ModelSpec.from_dict(spec.to_dict()) == spec

    def test_spec_for_ood_gnn(self):
        cfg = OODGNNConfig(hidden_dim=8, num_layers=2, readout="mean", dropout=0.0)
        spec = ModelSpec.for_ood_gnn(cfg)
        model = spec.build(SCHEMA)
        assert isinstance(model, OODGNN)
        assert model.config.readout == "mean"


class TestSingleSeedRoundTrip:
    @pytest.mark.parametrize("method", STACKABLE + UNSTACKABLE)
    def test_bitwise_logits_across_roster(self, method, rng, tmp_path):
        spec = ModelSpec(method, hidden_dim=8, num_layers=2)
        model = spec.build(SCHEMA)
        graphs = make_graphs(rng)
        warm_up(model, graphs)
        path = ModelArtifact.from_model(model, spec, SCHEMA).save(tmp_path / f"{method}.npz")
        (rebuilt,) = ModelArtifact.load(path).build_models()
        np.testing.assert_array_equal(predict(model, graphs), predict(rebuilt, graphs))

    def test_ood_gnn_round_trip(self, rng, tmp_path):
        cfg = OODGNNConfig(hidden_dim=8, num_layers=2)
        model = OODGNN(FEATURE_DIM, OUT_DIM, rng, config=cfg)
        graphs = make_graphs(rng)
        warm_up(model, graphs)
        spec = ModelSpec.for_ood_gnn(cfg)
        path = ModelArtifact.from_model(model, spec, SCHEMA).save(tmp_path / "ood.npz")
        (rebuilt,) = ModelArtifact.load(path).build_models()
        np.testing.assert_array_equal(predict(model, graphs), predict(rebuilt, graphs))

    def test_pna_degree_scale_travels(self, rng, tmp_path):
        spec = ModelSpec("pna", hidden_dim=8, num_layers=2, kwargs={"pna_degree_scale": 2.5})
        model = spec.build(SCHEMA)
        graphs = make_graphs(rng)
        warm_up(model, graphs)
        path = ModelArtifact.from_model(model, spec, SCHEMA).save(tmp_path / "pna.npz")
        # Rebuild through a spec *without* the constructor kwarg: the value
        # must come back through the buffer payload alone.
        artifact = ModelArtifact.load(path)
        artifact.spec = ModelSpec("pna", hidden_dim=8, num_layers=2)
        (rebuilt,) = artifact.build_models()
        np.testing.assert_array_equal(predict(model, graphs), predict(rebuilt, graphs))

    def test_metadata_and_seeds(self, rng, tmp_path):
        spec = ModelSpec("gin", hidden_dim=8, num_layers=2)
        model = spec.build(SCHEMA)
        path = ModelArtifact.from_model(
            model, spec, SCHEMA, seed=13, metadata={"run": "abc"}
        ).save(tmp_path / "meta.npz")
        artifact = ModelArtifact.load(path)
        assert artifact.seeds == (13,)
        assert artifact.metadata == {"run": "abc"}
        assert artifact.schema == SCHEMA

    def test_plain_checkpoint_rejected(self, rng, tmp_path):
        from repro.nn.checkpoint import save_checkpoint

        model = build_model("gin", FEATURE_DIM, OUT_DIM, rng, hidden_dim=8, num_layers=2)
        save_checkpoint(model, tmp_path / "plain.npz")
        with pytest.raises(ValueError, match="not a model artifact"):
            ModelArtifact.load(tmp_path / "plain.npz")


class TestSeedEnsembleRoundTrip:
    @pytest.mark.parametrize("method", STACKABLE)
    def test_stacked_seed_state_dict_to_artifact_bitwise(self, method, rng, tmp_path):
        """seed_state_dict(k) -> per-seed artifact -> reload -> bitwise logits.

        Trains nothing: per-seed models are independently initialised and
        warmed up (distinct BN stats), stacked, and the stacked model's
        per-seed slices must round-trip through the artifact bitwise.
        """
        spec = ModelSpec(method, hidden_dim=8, num_layers=2)
        graphs = make_graphs(rng)
        models = []
        for k in range(3):
            model = build_model(method, FEATURE_DIM, OUT_DIM, np.random.default_rng(100 + k),
                                hidden_dim=8, num_layers=2)
            warm_up(model, graphs)
            models.append(model)
        stacked = stack_seed_modules(models)
        path = ModelArtifact.from_stacked(stacked, spec, SCHEMA).save(tmp_path / f"{method}-ens.npz")
        artifact = ModelArtifact.load(path)
        assert artifact.num_seeds == 3
        rebuilt = artifact.build_models()
        for model, clone in zip(models, rebuilt):
            np.testing.assert_array_equal(predict(model, graphs), predict(clone, graphs))

    @pytest.mark.parametrize("method", UNSTACKABLE)
    def test_from_models_ensemble_round_trip(self, method, rng, tmp_path):
        """Unstackable rosters bundle via from_models and round-trip bitwise."""
        spec = ModelSpec(method, hidden_dim=8, num_layers=2)
        graphs = make_graphs(rng)
        models = []
        for k in range(2):
            model = build_model(method, FEATURE_DIM, OUT_DIM, np.random.default_rng(7 + k),
                                hidden_dim=8, num_layers=2)
            warm_up(model, graphs)
            models.append(model)
        path = ModelArtifact.from_models(models, spec, SCHEMA, seeds=(4, 9)).save(
            tmp_path / f"{method}-ens.npz"
        )
        artifact = ModelArtifact.load(path)
        assert artifact.seeds == (4, 9)
        for model, clone in zip(models, artifact.build_models()):
            np.testing.assert_array_equal(predict(model, graphs), predict(clone, graphs))

    def test_length_mismatch_rejected(self, rng):
        spec = ModelSpec("gin", hidden_dim=8, num_layers=2)
        model = spec.build(SCHEMA)
        with pytest.raises(ValueError, match="mismatch"):
            ModelArtifact(spec, SCHEMA, [model.state_dict()], [model.buffer_dict()], (0, 1))


class TestFormatVersioning:
    def test_artifact_carries_checkpoint_format_version(self, tmp_path):
        from repro.nn.checkpoint import CHECKPOINT_FORMAT_VERSION, load_state

        spec = ModelSpec("gin", hidden_dim=8, num_layers=2)
        path = ModelArtifact.from_model(spec.build(SCHEMA), spec, SCHEMA).save(tmp_path / "v.npz")
        _state, metadata = load_state(path)
        assert metadata["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert metadata["artifact_format_version"] == ARTIFACT_FORMAT_VERSION

    def test_unknown_artifact_version_rejected(self, tmp_path):
        from repro.nn.checkpoint import save_state

        spec = ModelSpec("gin", hidden_dim=8, num_layers=2)
        model = spec.build(SCHEMA)
        save_state(
            model.state_dict(),
            tmp_path / "future.npz",
            metadata={
                "kind": "repro-model-artifact",
                "artifact_format_version": ARTIFACT_FORMAT_VERSION + 1,
                "spec": spec.to_dict(),
                "schema": SCHEMA.to_dict(),
                "seeds": [0],
                "user": {},
            },
        )
        with pytest.raises(ValueError, match="format version"):
            ModelArtifact.load(tmp_path / "future.npz")
