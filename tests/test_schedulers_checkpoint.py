"""LR schedulers and checkpoint save/load."""

import numpy as np
import pytest

from repro.nn import Adam, MLP
from repro.nn.module import Parameter
from repro.nn.schedulers import StepLR, CosineAnnealingLR, LinearWarmupLR
from repro.nn.checkpoint import save_checkpoint, load_checkpoint
from repro.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(101)


def make_optimizer(lr=0.1):
    return Adam([Parameter(np.zeros(2))], lr=lr)


class TestStepLR:
    def test_decays_at_boundaries(self):
        opt = make_optimizer(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [0.1, 0.05, 0.05, 0.025])

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestCosine:
    def test_reaches_eta_min(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.001)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.001)

    def test_monotone_decreasing(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_after_t_max(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=3)
        for _ in range(6):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)


class TestWarmup:
    def test_starts_at_zero(self):
        opt = make_optimizer(0.1)
        LinearWarmupLR(opt, warmup_epochs=5)
        assert opt.lr == 0.0

    def test_ramps_then_flat(self):
        opt = make_optimizer(0.1)
        sched = LinearWarmupLR(opt, warmup_epochs=4)
        lrs = [sched.step() for _ in range(6)]
        np.testing.assert_allclose(lrs, [0.025, 0.05, 0.075, 0.1, 0.1, 0.1])


class TestCheckpoint:
    def test_roundtrip(self, rng, tmp_path):
        m1 = MLP([3, 8, 2], rng)
        m2 = MLP([3, 8, 2], np.random.default_rng(999))
        path = tmp_path / "model.npz"
        save_checkpoint(m1, path, metadata={"epoch": 7, "dataset": "proteins25"})
        meta = load_checkpoint(m2, path)
        assert meta == {"epoch": 7, "dataset": "proteins25"}
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_suffix_added(self, rng, tmp_path):
        m = MLP([2, 2], rng)
        save_checkpoint(m, tmp_path / "weights")
        assert (tmp_path / "weights.npz").exists()
        load_checkpoint(m, tmp_path / "weights")

    def test_mismatched_model_raises(self, rng, tmp_path):
        m1 = MLP([3, 8, 2], rng)
        m2 = MLP([3, 4, 2], rng)
        path = tmp_path / "model.npz"
        save_checkpoint(m1, path)
        with pytest.raises(ValueError):
            load_checkpoint(m2, path)

    def test_empty_metadata_default(self, rng, tmp_path):
        m = MLP([2, 2], rng)
        path = tmp_path / "m.npz"
        save_checkpoint(m, path)
        assert load_checkpoint(m, path) == {}

    def test_ood_gnn_checkpoint(self, tmp_path):
        from repro.core import OODGNN, OODGNNConfig

        cfg = OODGNNConfig(hidden_dim=8, num_layers=2)
        m1 = OODGNN(3, 2, np.random.default_rng(0), config=cfg)
        m2 = OODGNN(3, 2, np.random.default_rng(1), config=cfg)
        save_checkpoint(m1, tmp_path / "ood.npz")
        load_checkpoint(m2, tmp_path / "ood.npz")
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data)
