"""LR schedulers and checkpoint save/load."""

import numpy as np
import pytest

from repro.nn import Adam, MLP
from repro.nn.module import Parameter
from repro.nn.schedulers import StepLR, CosineAnnealingLR, LinearWarmupLR
from repro.nn.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    load_buffers,
    load_checkpoint,
    load_state,
    save_checkpoint,
    save_state,
)
from repro.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(101)


def make_optimizer(lr=0.1):
    return Adam([Parameter(np.zeros(2))], lr=lr)


class TestStepLR:
    def test_decays_at_boundaries(self):
        opt = make_optimizer(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [0.1, 0.05, 0.05, 0.025])

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestCosine:
    def test_reaches_eta_min(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.001)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.001)

    def test_monotone_decreasing(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_after_t_max(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=3)
        for _ in range(6):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)


class TestWarmup:
    def test_starts_at_zero(self):
        opt = make_optimizer(0.1)
        LinearWarmupLR(opt, warmup_epochs=5)
        assert opt.lr == 0.0

    def test_ramps_then_flat(self):
        opt = make_optimizer(0.1)
        sched = LinearWarmupLR(opt, warmup_epochs=4)
        lrs = [sched.step() for _ in range(6)]
        np.testing.assert_allclose(lrs, [0.025, 0.05, 0.075, 0.1, 0.1, 0.1])


class TestCheckpoint:
    def test_roundtrip(self, rng, tmp_path):
        m1 = MLP([3, 8, 2], rng)
        m2 = MLP([3, 8, 2], np.random.default_rng(999))
        path = tmp_path / "model.npz"
        save_checkpoint(m1, path, metadata={"epoch": 7, "dataset": "proteins25"})
        meta = load_checkpoint(m2, path)
        assert meta == {"epoch": 7, "dataset": "proteins25"}
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_suffix_added(self, rng, tmp_path):
        m = MLP([2, 2], rng)
        save_checkpoint(m, tmp_path / "weights")
        assert (tmp_path / "weights.npz").exists()
        load_checkpoint(m, tmp_path / "weights")

    def test_mismatched_model_raises(self, rng, tmp_path):
        m1 = MLP([3, 8, 2], rng)
        m2 = MLP([3, 4, 2], rng)
        path = tmp_path / "model.npz"
        save_checkpoint(m1, path)
        with pytest.raises(ValueError):
            load_checkpoint(m2, path)

    def test_empty_metadata_default(self, rng, tmp_path):
        m = MLP([2, 2], rng)
        path = tmp_path / "m.npz"
        save_checkpoint(m, path)
        assert load_checkpoint(m, path) == {}

    def test_ood_gnn_checkpoint(self, tmp_path):
        from repro.core import OODGNN, OODGNNConfig

        cfg = OODGNNConfig(hidden_dim=8, num_layers=2)
        m1 = OODGNN(3, 2, np.random.default_rng(0), config=cfg)
        m2 = OODGNN(3, 2, np.random.default_rng(1), config=cfg)
        save_checkpoint(m1, tmp_path / "ood.npz")
        load_checkpoint(m2, tmp_path / "ood.npz")
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data)


class TestSuffixHandling:
    """save/load agree on the final file name for every suffix shape."""

    def test_npz_suffix_not_doubled(self, rng, tmp_path):
        m = MLP([2, 2], rng)
        written = save_checkpoint(m, tmp_path / "m.npz")
        assert written == tmp_path / "m.npz"
        assert (tmp_path / "m.npz").exists()
        assert not (tmp_path / "m.npz.npz").exists()
        load_checkpoint(m, tmp_path / "m.npz")

    def test_foreign_suffix_round_trips(self, rng, tmp_path):
        # Formerly broken: np.savez wrote model.ckpt.npz but the loader
        # looked for model.npz (with_suffix substitution).
        m1 = MLP([3, 4, 2], rng)
        m2 = MLP([3, 4, 2], np.random.default_rng(5))
        written = save_checkpoint(m1, tmp_path / "model.ckpt")
        assert written == tmp_path / "model.ckpt.npz"
        load_checkpoint(m2, tmp_path / "model.ckpt")
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_array_equal(m1(x).data, m2(x).data)

    def test_exact_existing_path_wins(self, rng, tmp_path):
        m = MLP([2, 2], rng)
        save_checkpoint(m, tmp_path / "weights")
        state, _meta = load_state(tmp_path / "weights")
        assert state  # resolved weights.npz


class TestLoadStateHelper:
    def test_returns_state_without_a_model(self, rng, tmp_path):
        m = MLP([3, 8, 2], rng)
        save_checkpoint(m, tmp_path / "m.npz", metadata={"epoch": 3})
        state, metadata = load_state(tmp_path / "m.npz")
        assert set(state) == set(m.state_dict())
        for name, values in m.state_dict().items():
            np.testing.assert_array_equal(state[name], values)
        assert metadata["epoch"] == 3
        assert metadata["format_version"] == CHECKPOINT_FORMAT_VERSION

    def test_buffer_entries_kept_out_of_state(self, rng, tmp_path):
        m = MLP([3, 8, 2], rng, batch_norm=True)
        save_checkpoint(m, tmp_path / "bn.npz")
        state, _meta = load_state(tmp_path / "bn.npz")
        assert not any("running_" in k for k in state)
        buffers = load_buffers(tmp_path / "bn.npz")
        assert any(k.endswith("running_mean") for k in buffers)

    def test_legacy_archive_reports_version_one(self, rng, tmp_path):
        # A pre-versioning archive: raw arrays, no metadata key at all.
        m = MLP([2, 2], rng)
        with open(tmp_path / "legacy.npz", "wb") as fh:
            np.savez(fh, **m.state_dict())
        state, metadata = load_state(tmp_path / "legacy.npz")
        assert metadata == {"format_version": 1}
        m.load_state_dict(state)
        assert load_buffers(tmp_path / "legacy.npz") == {}
        assert load_checkpoint(m, tmp_path / "legacy.npz") == {}

    def test_save_state_rejects_foreign_format_version(self, tmp_path):
        with pytest.raises(ValueError, match="format_version"):
            save_state({"w": np.ones(2)}, tmp_path / "x.npz", metadata={"format_version": 9})

    def test_load_state_save_state_round_trip(self, rng, tmp_path):
        """The model-free dict API must round-trip its own output."""
        m = MLP([2, 3], rng)
        save_checkpoint(m, tmp_path / "a.npz", metadata={"epoch": 2})
        state, metadata = load_state(tmp_path / "a.npz")
        save_state(state, tmp_path / "b.npz", metadata=metadata)  # no reserved-key error
        state2, metadata2 = load_state(tmp_path / "b.npz")
        assert metadata2 == metadata
        for name in state:
            np.testing.assert_array_equal(state[name], state2[name])


class TestBufferPersistence:
    def test_running_stats_round_trip(self, rng, tmp_path):
        m1 = MLP([3, 8, 2], rng, batch_norm=True)
        m1(Tensor(rng.normal(size=(16, 3))))  # train-mode: moves running stats
        m2 = MLP([3, 8, 2], np.random.default_rng(9), batch_norm=True)
        save_checkpoint(m1, tmp_path / "m.npz")
        load_checkpoint(m2, tmp_path / "m.npz")
        m1.eval(), m2.eval()
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_array_equal(m1(x).data, m2(x).data)
        assert dict(m1.named_buffers()).keys() == dict(m2.named_buffers()).keys()
        for name, value in m1.named_buffers():
            np.testing.assert_array_equal(value, dict(m2.named_buffers())[name])

    def test_load_buffer_dict_strict(self, rng):
        m = MLP([3, 8, 2], rng, batch_norm=True)
        buffers = m.buffer_dict()
        buffers.pop(next(iter(buffers)))
        with pytest.raises(KeyError, match="missing"):
            m.load_buffer_dict(buffers)

    def test_buffer_shape_mismatch(self, rng):
        m = MLP([3, 8, 2], rng, batch_norm=True)
        buffers = {k: np.zeros(3) for k in m.buffer_dict()}
        with pytest.raises(ValueError, match="shape mismatch"):
            m.load_buffer_dict(buffers)


class TestAtomicWrites:
    """save_state publishes atomically: a crash mid-write never tears the
    archive on disk (temp file + fsync + os.replace)."""

    def test_kill_mid_write_leaves_previous_archive_intact(self, rng, tmp_path):
        import multiprocessing as mp
        import os

        path = tmp_path / "model.npz"
        state = {"w": rng.normal(size=(4, 4)), "b": rng.normal(size=4)}
        save_state(state, path, metadata={"epoch": 1})
        before = path.read_bytes()

        def torn_writer():
            import numpy as np_mod

            def torn_savez(fh, **payload):
                fh.write(b"\x00garbage: process dies mid-archive\x00")
                fh.flush()
                os.fsync(fh.fileno())
                os._exit(1)  # hard kill before the archive completes

            np_mod.savez = torn_savez
            save_state({"w": rng.normal(size=(4, 4))}, path, metadata={"epoch": 2})

        proc = mp.get_context("fork").Process(target=torn_writer)
        proc.start()
        proc.join(timeout=30.0)
        assert proc.exitcode == 1
        # The published archive is byte-identical and still loads.
        assert path.read_bytes() == before
        loaded, metadata = load_state(path)
        assert metadata["epoch"] == 1
        np.testing.assert_array_equal(loaded["w"], state["w"])

    def test_kill_mid_write_to_fresh_path_publishes_nothing(self, rng, tmp_path):
        import multiprocessing as mp
        import os

        path = tmp_path / "fresh.npz"

        def torn_writer():
            import numpy as np_mod

            def torn_savez(fh, **payload):
                fh.write(b"partial")
                os._exit(1)

            np_mod.savez = torn_savez
            save_state({"w": np.ones(2)}, path)

        proc = mp.get_context("fork").Process(target=torn_writer)
        proc.start()
        proc.join(timeout=30.0)
        assert proc.exitcode == 1
        assert not path.exists()  # nothing half-written at the target name

    def test_temp_file_cleaned_up_on_write_error(self, rng, tmp_path, monkeypatch):
        import numpy as np_mod

        path = tmp_path / "model.npz"

        def failing_savez(fh, **payload):
            raise OSError("disk full")

        monkeypatch.setattr(np_mod, "savez", failing_savez)
        with pytest.raises(OSError, match="disk full"):
            save_state({"w": np.ones(2)}, path)
        assert list(tmp_path.iterdir()) == []  # no temp litter, no target
