"""Module system: registration, traversal, modes, state dicts."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Module, Parameter, Sequential, ModuleList, Linear, MLP


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class Nested(Module):
    def __init__(self, rng):
        super().__init__()
        self.inner = Linear(2, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.inner(x) * self.scale


class TestRegistration:
    def test_parameters_discovered(self, rng):
        m = Nested(rng)
        names = dict(m.named_parameters())
        assert set(names) == {"scale", "inner.weight", "inner.bias"}

    def test_num_parameters(self, rng):
        m = Nested(rng)
        assert m.num_parameters() == 1 + 4 + 2

    def test_modules_iteration(self, rng):
        m = Nested(rng)
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds == ["Nested", "Linear"]

    def test_module_list(self, rng):
        ml = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
        assert len(ml) == 2
        assert len(list(ml)) == 2
        assert ml[1] is not ml[0]
        parent = Module()
        parent.layers = ml
        assert len(parent.parameters()) == 4


class TestModes:
    def test_train_eval_propagate(self, rng):
        m = MLP([2, 4, 1], rng, dropout=0.5)
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_zero_grad_recursive(self, rng):
        m = Nested(rng)
        out = m(Tensor(rng.normal(size=(3, 2))))
        out.sum().backward()
        assert m.inner.weight.grad is not None
        m.zero_grad()
        assert m.inner.weight.grad is None


class TestStateDict:
    def test_roundtrip(self, rng):
        m1, m2 = Nested(rng), Nested(np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        x = Tensor(rng.normal(size=(3, 2)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_state_dict_is_a_copy(self, rng):
        m = Nested(rng)
        state = m.state_dict()
        state["scale"][0] = 123.0
        assert m.scale.data[0] == 1.0

    def test_missing_key_raises(self, rng):
        m = Nested(rng)
        state = m.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        m = Nested(rng)
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        m = Nested(rng)
        state = m.state_dict()
        state["scale"] = np.zeros(3)
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestForward:
    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_sequential_empty(self):
        seq = Sequential()
        x = Tensor(np.ones(2))
        assert seq(x) is x
