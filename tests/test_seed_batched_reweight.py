"""Seed-batched inner reweighting loop: parity with K sequential loops.

The contracts under test (ISSUE 3, see docs/ARCHITECTURE.md):

* `SeedFusedDecorrelation` over a ``(K, n, d, Q)`` stack matches K scalar
  `FusedDecorrelation` engines to 1e-8 (loss, gradient) in both primal
  and dual modes, including degenerate inputs (constant features, a
  single local row under fixed globals).
* `learn_many` matches K sequential `SampleWeightLearner.learn` calls to
  1e-8 (loss trajectories, final weights) for K in {1, 3, 8}, and
  dispatches non-stackable rosters (autograd backend, mismatched
  hyper-parameters) to the sequential reference.
* Blocked-Gram dual evaluation is bitwise identical to the unblocked
  path for any block size, and dual mode runs n = 4096 without a
  Gram-size cap.
"""

import numpy as np
import pytest

from repro.core import (
    FusedDecorrelation,
    InPlaceAdam,
    RandomFourierFeatures,
    SampleWeightLearner,
    SeedFusedDecorrelation,
    learn_many,
)

PARITY_ATOL = 1e-8
SEED_COUNTS = (1, 3, 8)


def _feature_stack(k, n=24, d=4, q=3, seed=0):
    return np.random.default_rng(seed).normal(size=(k, n, d, q))


def _weight_stack(rng, k, n):
    w = rng.uniform(0.2, 2.5, size=(k, n))
    return w


def _learner(seed, backend="fused", **kwargs):
    params = dict(epochs=5, lr=0.05, l2_penalty=0.05)
    params.update(kwargs)
    rff = RandomFourierFeatures(
        num_functions=params.pop("num_functions", 3),
        fraction=params.pop("fraction", 1.0),
        linear=params.pop("linear", False),
        rng=np.random.default_rng(100 + seed),
    )
    return SampleWeightLearner(rff, backend=backend, **params)


class TestSeedEngineParity:
    @pytest.mark.parametrize("k", SEED_COUNTS)
    @pytest.mark.parametrize("mode", ["primal", "dual", "auto"])
    def test_matches_k_scalar_engines(self, k, mode):
        rng = np.random.default_rng(k)
        feats = _feature_stack(k, seed=k)
        engine = SeedFusedDecorrelation(feats, mode=mode)
        w = _weight_stack(rng, k, feats.shape[1])
        loss, grad = engine.loss_and_grad(w)
        assert loss.shape == (k,) and grad.shape == w.shape
        np.testing.assert_allclose(engine.loss(w), loss, atol=PARITY_ATOL)
        for i in range(k):
            ref_loss, ref_grad = FusedDecorrelation(feats[i], mode=mode).loss_and_grad(w[i])
            assert loss[i] == pytest.approx(ref_loss, abs=PARITY_ATOL), (mode, i)
            np.testing.assert_allclose(grad[i], ref_grad, atol=PARITY_ATOL, err_msg=f"{mode}/{i}")

    @pytest.mark.parametrize("mode", ["primal", "dual"])
    def test_constant_features_parity_and_uniform_zero(self, mode):
        """Degenerate case: constant features still track the scalar engines.

        With uniform weights the weighted rows centre to zero, so the
        loss vanishes exactly; non-uniform weights keep a nonzero loss
        (the weighted rows differ) and must match seed-by-seed.
        """
        feats = np.ones((3, 10, 4, 2)) * np.arange(1, 4)[:, None, None, None]
        engine = SeedFusedDecorrelation(feats, mode=mode)
        np.testing.assert_allclose(engine.loss(np.ones((3, 10))), 0.0, atol=1e-18)
        w = np.random.default_rng(0).uniform(0.5, 1.5, size=(3, 10))
        loss, grad = engine.loss_and_grad(w)
        for i in range(3):
            ref_loss, ref_grad = FusedDecorrelation(feats[i], mode=mode).loss_and_grad(w[i])
            assert loss[i] == pytest.approx(ref_loss, abs=PARITY_ATOL)
            np.testing.assert_allclose(grad[i], ref_grad, atol=PARITY_ATOL)

    def test_refresh_reuses_buffers_and_tracks_features(self):
        rng = np.random.default_rng(5)
        a, b = _feature_stack(3, seed=1), _feature_stack(3, seed=2)
        engine = SeedFusedDecorrelation(a, mode="dual")
        refreshed = engine.refresh(b)
        assert refreshed is engine
        w = _weight_stack(rng, 3, a.shape[1])
        loss, grad = engine.loss_and_grad(w)
        fresh_loss, fresh_grad = SeedFusedDecorrelation(b, mode="dual").loss_and_grad(w)
        np.testing.assert_array_equal(loss, fresh_loss)
        np.testing.assert_array_equal(grad, fresh_grad)
        with pytest.raises(ValueError, match="refresh features shape"):
            engine.refresh(_feature_stack(3, n=30, seed=3))

    def test_input_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="expected"):
            SeedFusedDecorrelation(rng.normal(size=(5, 3, 2)))
        with pytest.raises(ValueError, match="two samples"):
            SeedFusedDecorrelation(rng.normal(size=(2, 1, 3, 2)))
        with pytest.raises(ValueError, match="two representation dimensions"):
            SeedFusedDecorrelation(rng.normal(size=(2, 5, 1, 2)))
        with pytest.raises(ValueError, match="mode"):
            SeedFusedDecorrelation(rng.normal(size=(2, 5, 3, 2)), mode="nope")
        engine = SeedFusedDecorrelation(rng.normal(size=(2, 5, 3, 2)))
        with pytest.raises(ValueError, match="weights"):
            engine.loss(np.ones(5))

    def test_scalar_engine_rejects_single_sample(self):
        with pytest.raises(ValueError, match="two samples"):
            FusedDecorrelation(np.random.default_rng(0).normal(size=(1, 3, 2)))


class TestBlockedGram:
    @pytest.mark.parametrize("block_rows", [1, 3, 7, 16, 1000])
    def test_blocked_matches_unblocked_exactly(self, block_rows):
        """Each row lives in exactly one block -> bitwise-identical results."""
        rng = np.random.default_rng(13)
        feats = rng.normal(size=(40, 5, 2))
        w = rng.uniform(0.3, 2.0, size=40)
        full = FusedDecorrelation(feats, mode="dual")
        assert full.block_rows == 40  # default budget covers the batch: one block
        blocked = FusedDecorrelation(feats, mode="dual", block_rows=block_rows)
        loss_f, grad_f = full.loss_and_grad(w)
        loss_b, grad_b = blocked.loss_and_grad(w)
        assert loss_b == loss_f
        np.testing.assert_array_equal(grad_b, grad_f)
        assert blocked.loss(w) == full.loss(w)

    def test_seed_engine_carries_no_quadratic_scratch(self):
        """The moment-form dual path caches Gram moments, not P/R blocks.

        The seed engine's per-evaluation intermediates are all (K, n) or
        smaller — the only O(n^2) state is the per-batch squared-Gram
        cache (plus the linear-size pair products), nothing per-epoch.
        """
        feats = _feature_stack(4, n=30, seed=4)
        engine = SeedFusedDecorrelation(feats, mode="dual")
        assert engine._k2.shape == (4, 30, 30)
        x = feats.reshape(4, 30, -1)
        gram = np.matmul(x, x.transpose(0, 2, 1))
        np.testing.assert_allclose(engine._k2, gram * gram, rtol=1e-12)
        # Pair products stored for the q(q+1)/2 upper-triangle pairs only,
        # sample-minor so the per-epoch matvecs stream contiguously.
        assert engine._ppt.shape == (4, 4 * (3 * 4 // 2), 30)

    def test_dual_mode_runs_large_batch_without_cap(self):
        """n = 4096 dual evaluation: the former hard Gram cap is gone."""
        rng = np.random.default_rng(99)
        feats = rng.normal(size=(4096, 2, 2))
        engine = FusedDecorrelation(feats, mode="dual")
        assert engine.block_rows < engine.n  # the scratch budget forces blocking
        loss, grad = engine.loss_and_grad(np.ones(4096))
        assert np.isfinite(loss) and np.isfinite(grad).all()
        # Spot-check against the primal evaluation of the same objective.
        ref_loss, ref_grad = FusedDecorrelation(feats, mode="primal").loss_and_grad(np.ones(4096))
        assert loss == pytest.approx(ref_loss, abs=PARITY_ATOL)
        np.testing.assert_allclose(grad, ref_grad, atol=PARITY_ATOL)

    def test_invalid_block_rows_rejected(self):
        feats = np.random.default_rng(0).normal(size=(10, 3, 2))
        with pytest.raises(ValueError, match="block_rows"):
            FusedDecorrelation(feats, mode="dual", block_rows=0)


class TestLearnManyParity:
    @pytest.mark.parametrize("k", SEED_COUNTS)
    def test_matches_sequential_learns(self, k):
        rng = np.random.default_rng(k + 50)
        reps = rng.normal(size=(k, 40, 6))
        res_b = learn_many([_learner(s) for s in range(k)], reps)
        res_s = [_learner(s).learn(reps[s]) for s in range(k)]
        for rb, rs in zip(res_b, res_s):
            assert rb.initial_loss == pytest.approx(rs.initial_loss, abs=PARITY_ATOL)
            np.testing.assert_allclose(rb.losses, rs.losses, atol=PARITY_ATOL)
            np.testing.assert_allclose(rb.weights, rs.weights, atol=PARITY_ATOL)
            assert rb.final_loss == rb.losses[-1]

    def test_matches_sequential_with_fixed_global_weights(self):
        rng = np.random.default_rng(7)
        k = 3
        reps = rng.normal(size=(k, 50, 5))
        fixed = np.tile(np.full(18, 1.4), (k, 1))
        res_b = learn_many([_learner(s) for s in range(k)], reps, fixed_weights=fixed)
        res_s = [_learner(s).learn(reps[s], fixed_weights=fixed[s]) for s in range(k)]
        for rb, rs in zip(res_b, res_s):
            assert rb.weights.shape == (32,)
            np.testing.assert_allclose(rb.losses, rs.losses, atol=PARITY_ATOL)
            np.testing.assert_allclose(rb.weights, rs.weights, atol=PARITY_ATOL)

    def test_single_local_row_under_fixed_globals(self):
        """Degenerate n_local = 1: the stacked loop still matches learn()."""
        rng = np.random.default_rng(8)
        k = 2
        reps = rng.normal(size=(k, 12, 4))
        fixed = np.tile(np.full(11, 1.0), (k, 1))
        res_b = learn_many([_learner(s) for s in range(k)], reps, fixed_weights=fixed)
        res_s = [_learner(s).learn(reps[s], fixed_weights=fixed[s]) for s in range(k)]
        for rb, rs in zip(res_b, res_s):
            assert rb.weights.shape == (1,)
            np.testing.assert_allclose(rb.weights, rs.weights, atol=PARITY_ATOL)
            np.testing.assert_allclose(rb.losses, rs.losses, atol=PARITY_ATOL)

    def test_constant_representations_stay_uniform(self):
        """Degenerate features: zero loss, zero gradient, weights stay one."""
        k = 3
        reps = np.ones((k, 20, 4))
        res_b = learn_many([_learner(s) for s in range(k)], reps)
        res_s = [_learner(s).learn(reps[s]) for s in range(k)]
        for rb, rs in zip(res_b, res_s):
            np.testing.assert_allclose(rb.weights, rs.weights, atol=PARITY_ATOL)
            np.testing.assert_allclose(rb.losses, rs.losses, atol=PARITY_ATOL)
            np.testing.assert_allclose(rb.weights, 1.0, atol=1e-6)

    def test_resample_rff_advances_per_seed_streams_identically(self):
        rng = np.random.default_rng(9)
        k = 3
        reps = rng.normal(size=(k, 30, 5))
        res_b = learn_many([_learner(s, resample_rff=True) for s in range(k)], reps)
        res_s = [_learner(s, resample_rff=True).learn(reps[s]) for s in range(k)]
        for rb, rs in zip(res_b, res_s):
            np.testing.assert_allclose(rb.losses, rs.losses, atol=PARITY_ATOL)
            np.testing.assert_allclose(rb.weights, rs.weights, atol=PARITY_ATOL)

    def test_autograd_roster_dispatches_to_sequential_reference(self):
        rng = np.random.default_rng(10)
        k = 2
        reps = rng.normal(size=(k, 25, 4))
        res_b = learn_many([_learner(s, backend="autograd", epochs=3) for s in range(k)], reps)
        res_s = [_learner(s, backend="autograd", epochs=3).learn(reps[s]) for s in range(k)]
        for rb, rs in zip(res_b, res_s):
            np.testing.assert_array_equal(rb.weights, rs.weights)
            assert rb.losses == rs.losses

    def test_mismatched_hyperparams_dispatch_to_sequential(self):
        rng = np.random.default_rng(11)
        reps = rng.normal(size=(2, 20, 4))
        learners = [_learner(0, lr=0.05), _learner(1, lr=0.1)]
        res_b = learn_many(learners, reps)
        res_s = [_learner(0, lr=0.05).learn(reps[0]), _learner(1, lr=0.1).learn(reps[1])]
        for rb, rs in zip(res_b, res_s):
            np.testing.assert_array_equal(rb.weights, rs.weights)

    def test_engine_cache_refreshes_across_calls(self):
        """Same-shape consecutive stacks reuse the lead learner's engine."""
        rng = np.random.default_rng(12)
        learners = [_learner(s) for s in range(3)]
        reps1 = rng.normal(size=(3, 30, 5))
        reps2 = rng.normal(size=(3, 30, 5))
        learn_many(learners, reps1)
        engine = learners[0]._seed_engine
        assert engine is not None
        res = learn_many(learners, reps2)
        assert learners[0]._seed_engine is engine  # refreshed, not rebuilt
        fresh = [_learner(s) for s in range(3)]
        for f in fresh:
            f.rff(np.zeros((30, 5)))  # advance streams past the first call
        res_ref = [f.learn(reps2[k]) for k, f in enumerate(fresh)]
        for rb, rs in zip(res, res_ref):
            np.testing.assert_allclose(rb.weights, rs.weights, atol=PARITY_ATOL)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="at least one learner"):
            learn_many([], np.zeros((0, 5, 3)))
        with pytest.raises(ValueError, match="representations"):
            learn_many([_learner(0)], np.zeros((2, 5, 3)))
        with pytest.raises(ValueError, match="no local rows"):
            learn_many([_learner(0)], np.ones((1, 6, 3)), fixed_weights=np.ones((1, 6)))


class TestStackedAdam:
    def test_stacked_step_matches_independent_optimisers(self):
        rng = np.random.default_rng(20)
        k, n = 4, 9
        stacked_param = rng.normal(size=(k, n))
        per_seed_params = [stacked_param[i].copy() for i in range(k)]
        stacked_opt = InPlaceAdam((k, n), lr=0.03)
        per_seed_opts = [InPlaceAdam(n, lr=0.03) for _ in range(k)]
        for step in range(20):
            grad = np.sin(stacked_param + step)
            stacked_opt.step(stacked_param, grad)
            for i in range(k):
                per_seed_opts[i].step(per_seed_params[i], np.sin(per_seed_params[i] + step))
                np.testing.assert_array_equal(stacked_param[i], per_seed_params[i])
