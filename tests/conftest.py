"""Shared fixtures: loads the encoder-spec roster registry at collection time.

The registry itself lives in :mod:`tests.encoder_specs` (a uniquely named
module, because ``benchmarks/conftest.py`` also claims the ``conftest``
module name in a whole-repo pytest run).  Importing it here runs its loud
completeness check — pytest collection aborts whenever an encoder
registered in ``repro.encoders.available_models`` has no ``EncoderSpec``
— and re-exports the names so ``from conftest import ...`` keeps working
in suites collected from ``tests/`` alone.
"""

from encoder_specs import (  # noqa: F401  (re-exported for the parity suites)
    ENCODER_SPECS,
    STACKABLE_SPECS,
    UNSTACKABLE_SPECS,
    EncoderSpec,
    encoder_spec,
    spec_params,
)
