"""COLLAB / PROTEINS / D&D-like generators and their causal structure."""

import networkx as nx
import numpy as np
import pytest

from repro.datasets import make_collab, make_proteins, make_dd
from repro.datasets.social import sample_collab_graph, sample_protein_graph
from repro.graph.utils import to_networkx, is_undirected


@pytest.fixture
def rng():
    return np.random.default_rng(79)


def max_clique_size(graph) -> int:
    return max(len(c) for c in nx.find_cliques(to_networkx(graph)))


class TestCollabGenerator:
    def test_ego_connected_to_everyone(self, rng):
        g = sample_collab_graph(1, 20, rng)
        nxg = to_networkx(g)
        assert nxg.degree(0) == 19

    def test_fields_have_distinct_density(self, rng):
        def avg_density(field):
            vals = []
            for _ in range(8):
                g = sample_collab_graph(field, 30, rng)
                vals.append(g.num_edges / (g.num_nodes * (g.num_nodes - 1)))
            return np.mean(vals)

        hep, astro = avg_density(0), avg_density(2)
        assert hep > astro  # big collaborations are denser

    def test_invalid_field(self, rng):
        with pytest.raises(ValueError):
            sample_collab_graph(5, 10, rng)

    def test_undirected_and_featured(self, rng):
        g = sample_collab_graph(0, 25, rng)
        assert is_undirected(g.edge_index)
        np.testing.assert_allclose(g.x.sum(axis=1), 1.0)  # one-hot bins


class TestProteinGenerator:
    def test_enzyme_contains_4clique(self, rng):
        for _ in range(5):
            g = sample_protein_graph(True, int(rng.integers(10, 40)), rng)
            assert max_clique_size(g) >= 4

    def test_non_enzyme_never_has_4clique(self, rng):
        """The motif is perfectly discriminative: decorations (helix
        chords, sheet rungs) can build triangles but never a 4-clique."""
        for _ in range(25):
            g = sample_protein_graph(False, int(rng.integers(10, 80)), rng)
            assert max_clique_size(g) <= 3

    def test_backbone_connected(self, rng):
        g = sample_protein_graph(False, 30, rng)
        assert nx.is_connected(to_networkx(g))

    def test_minimum_size(self, rng):
        with pytest.raises(ValueError):
            sample_protein_graph(True, 4, rng)

    def test_labels_and_meta(self, rng):
        g = sample_protein_graph(True, 15, rng)
        assert g.y == 1
        assert g.meta["is_enzyme"]


class TestDatasets:
    def test_collab_split_ranges(self, rng):
        ds = make_collab(rng, num_train=20, num_valid=5, num_test=8)
        assert max(g.num_nodes for g in ds.train) <= 35
        assert min(g.num_nodes for g in ds.tests["Test(large)"]) >= 36

    def test_proteins_split_ranges(self, rng):
        ds = make_proteins(rng, num_train=20, num_valid=5, num_test=8)
        assert max(g.num_nodes for g in ds.train) <= 25
        assert min(g.num_nodes for g in ds.tests["Test(large)"]) >= 26

    def test_dd_variants(self, rng):
        ds200 = make_dd(rng, variant=200, num_train=10, num_valid=4, num_test=4)
        assert max(g.num_nodes for g in ds200.train) <= 200
        assert min(g.num_nodes for g in ds200.tests["Test(large)"]) >= 201
        with pytest.raises(ValueError):
            make_dd(rng, variant=250)

    def test_size_bias_creates_confound(self, rng):
        """Inside the training range, label correlates with size; the OOD
        test split has no such bias."""
        ds = make_proteins(rng, num_train=150, num_valid=10, num_test=60, size_bias=0.9)
        sizes = np.array([g.num_nodes for g in ds.train])
        labels = np.array([g.y for g in ds.train])
        assert np.corrcoef(sizes, labels)[0, 1] > 0.3
        test_sizes = np.array([g.num_nodes for g in ds.tests["Test(large)"]])
        test_labels = np.array([g.y for g in ds.tests["Test(large)"]])
        assert abs(np.corrcoef(test_sizes, test_labels)[0, 1]) < 0.3

    def test_no_bias_when_disabled(self, rng):
        ds = make_proteins(rng, num_train=150, num_valid=10, num_test=10, size_bias=0.0)
        sizes = np.array([g.num_nodes for g in ds.train])
        labels = np.array([g.y for g in ds.train])
        assert abs(np.corrcoef(sizes, labels)[0, 1]) < 0.25

    def test_motif_predictive_in_both_splits(self, rng):
        ds = make_proteins(rng, num_train=20, num_valid=5, num_test=20)
        for g in ds.tests["Test(large)"]:
            assert (max_clique_size(g) >= 4) == bool(g.y)
