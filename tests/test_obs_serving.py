"""Observability through the serving stack: /metrics, trace ids, access log.

End-to-end coverage for the observability integration of ISSUE 9:

* ``GET /metrics`` serves valid Prometheus text carrying the process
  registry, this server's :class:`ServingStats` and — behind a
  :class:`WorkerPool` — the aggregated worker-side counters;
* every ``/predict`` response echoes an ``X-Trace-Id`` header (the
  client's when supplied), and the id propagates through the worker
  pool back onto the response payload;
* ``GET /stats`` **before any traffic** answers 200 with zero latency
  percentiles (regression: ``np.percentile`` on an empty window used to
  be a 500);
* the opt-in structured access log emits one JSON line per request;
* worker pools publish per-worker stats snapshots that aggregate into
  ``/stats`` and ``/metrics``;
* the cache-counter unification — one ``hits/misses/rebuilds/size``
  shape for every operator cache, with the legacy accessor shimmed
  behind a :class:`DeprecationWarning`.
"""

import io
import json
import re
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.obs import cache_info
from repro.obs.caches import CACHE_STAT_KEYS
from repro.serve import (
    FeatureSchema,
    InferenceEngine,
    ModelArtifact,
    ModelSpec,
    PendingResult,
    ServingStats,
    WorkerPool,
)
from repro.serve.net import EngineBackend, serve_http
from repro.serve.stats import aggregate_snapshots

FEATURE_DIM, OUT_DIM = 4, 3
SCHEMA = FeatureSchema(feature_dim=FEATURE_DIM, out_dim=OUT_DIM, task_type="multiclass", num_classes=OUT_DIM)

SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")


def make_graph_payload(rng, nodes=8):
    g = erdos_renyi(nodes, 0.5, rng)
    x = rng.normal(size=(nodes, FEATURE_DIM))
    return {"x": x.tolist(), "edge_index": g.edge_index.tolist()}


def http(url, payload=None, headers=None, timeout=30.0):
    """(status, response headers, parsed JSON body)."""
    try:
        if payload is None:
            request = urllib.request.Request(url, headers=headers or {})
        else:
            request = urllib.request.Request(
                url, data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json", **(headers or {})},
            )
        response = urllib.request.urlopen(request, timeout=timeout)
        return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


def http_text(url, timeout=30.0):
    """(status, content type, body text) — for the /metrics scrape."""
    response = urllib.request.urlopen(url, timeout=timeout)
    return response.status, response.headers.get("Content-Type"), response.read().decode()


def assert_valid_prometheus(text):
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"


@pytest.fixture
def rng():
    return np.random.default_rng(91)


@pytest.fixture(scope="module")
def artifact():
    from repro.graph.data import GraphBatch

    rng = np.random.default_rng(23)
    spec = ModelSpec("gin", hidden_dim=8, num_layers=2)
    models = [spec.build(SCHEMA) for _ in range(2)]
    graphs = []
    for _ in range(4):
        g = erdos_renyi(int(rng.integers(5, 10)), 0.5, rng)
        g.x = rng.normal(size=(g.num_nodes, FEATURE_DIM))
        graphs.append(g)
    for model in models:
        model.train()
        model(GraphBatch.from_graphs(graphs))
        model.eval()
    return ModelArtifact.from_models(models, spec, SCHEMA)


OK = {"prediction": 1, "output": [0.0], "probs": [1.0], "energy": -2.0, "ood": False}


class StubBackend:
    """Legacy two-argument submit surface: no trace_id parameter."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.clock = time.monotonic
        self.submitted = []

    def submit(self, graph, deadline=None):
        self.submitted.append((graph, deadline))
        outcome = self.outcomes.pop(0)
        handle = PendingResult()
        if isinstance(outcome, dict):
            handle._resolve(outcome)
        else:
            handle._resolve(None, outcome())
        return handle

    def stop(self):
        pass


@pytest.fixture
def stub_server(request):
    servers = []

    def start(outcomes, **server_kwargs):
        backend = StubBackend(outcomes)
        server = serve_http(backend, schema=SCHEMA, **server_kwargs)
        servers.append(server)
        return backend, server

    yield start
    for server in servers:
        server.draining = True
        server.shutdown()
        server.server_close()


class TestStatsBeforeTraffic:
    def test_stats_endpoint_is_200_with_zero_percentiles(self, stub_server):
        """Regression: /stats before any request used to 500 inside
        np.percentile on the empty latency window."""
        _backend, server = stub_server([])
        status, _headers, stats = http(server.url + "/stats")
        assert status == 200
        assert stats["latency_ms"]["window"] == 0
        assert stats["latency_ms"]["p50"] == 0.0
        assert stats["latency_ms"]["p99"] == 0.0
        assert stats["counts"]["served"] == 0

    def test_empty_stats_object_snapshots_clean(self):
        snap = ServingStats(clock=lambda: 0.0).snapshot()
        assert snap["latency_ms"] == {"window": 0, "p50": 0.0, "p99": 0.0}


class TestTraceIdHeader:
    def test_minted_trace_id_echoed(self, stub_server, rng):
        _backend, server = stub_server([OK])
        _status, headers, _body = http(server.url + "/predict", make_graph_payload(rng))
        assert re.fullmatch(r"[0-9a-f]{16}", headers["X-Trace-Id"])

    def test_client_supplied_trace_id_echoed_verbatim(self, stub_server, rng):
        _backend, server = stub_server([OK])
        _status, headers, _body = http(
            server.url + "/predict", make_graph_payload(rng),
            headers={"X-Trace-Id": "client-chose-this"},
        )
        assert headers["X-Trace-Id"] == "client-chose-this"

    def test_error_responses_carry_the_header_too(self, stub_server):
        _backend, server = stub_server([])
        status, headers, _body = http(
            server.url + "/predict", {"x": [[1.0, 2.0], [3.0]]},
            headers={"X-Trace-Id": "badreq"},
        )
        assert status == 400 and headers["X-Trace-Id"] == "badreq"

    def test_legacy_backend_without_trace_parameter_still_serves(self, stub_server, rng):
        """The capability probe must route around StubBackend's two-argument
        submit instead of TypeErroring on an unexpected keyword."""
        backend, server = stub_server([OK])
        status, _headers, body = http(server.url + "/predict", make_graph_payload(rng))
        assert status == 200 and body["prediction"] == 1
        assert len(backend.submitted) == 1
        assert not server._submit_traces


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_with_serving_and_cache_families(self, stub_server, rng):
        _backend, server = stub_server([OK])
        http(server.url + "/predict", make_graph_payload(rng))
        status, content_type, text = http_text(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert_valid_prometheus(text)
        assert "# TYPE repro_serving_requests_total counter" in text
        assert 'repro_serving_requests_total{outcome="served"} 1' in text
        # The unified cache counters ride in the same scrape.
        assert "# TYPE repro_cache_events_total counter" in text
        for cache in ("message_pass", "scatter", "prep"):
            assert f'cache="{cache}"' in text
        assert "repro_serving_uptime_seconds" in text


class TestAccessLog:
    def test_one_json_line_per_request(self, stub_server, rng):
        stream = io.StringIO()
        _backend, server = stub_server(
            [OK], access_log=True, access_log_stream=stream
        )
        http(server.url + "/predict", make_graph_payload(rng),
             headers={"X-Trace-Id": "logged-request"})
        request = urllib.request.Request(
            server.url + "/predict", data=b"not json{",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request, timeout=30.0)
        # The handler logs *after* responding, so the client can observe
        # the response a hair before the line lands; poll briefly.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            lines = [json.loads(line) for line in stream.getvalue().splitlines()]
            if len(lines) == 2:
                break
            time.sleep(0.01)
        assert len(lines) == 2
        ok_line, bad_line = lines
        assert ok_line["trace_id"] == "logged-request"
        assert ok_line["status"] == 200
        assert ok_line["latency_ms"] >= 0.0
        assert ok_line["graphs"] == 1
        assert ok_line["energy"] == pytest.approx(-2.0)
        assert bad_line["status"] == 400 and bad_line["graphs"] == 0

    def test_disabled_by_default(self, stub_server, rng, capsys):
        _backend, server = stub_server([OK])
        http(server.url + "/predict", make_graph_payload(rng))
        assert server.access_log is False
        assert capsys.readouterr().err == ""


class TestAggregateSnapshots:
    def test_counts_and_ood_totals_add(self):
        a = ServingStats(clock=lambda: 0.0)
        b = ServingStats(clock=lambda: 0.0)
        for _ in range(3):
            a.record_served(0.001, energy=-1.0, is_ood=False)
        b.record_served(0.002, energy=2.0, is_ood=True)
        b.record_expired()
        agg = aggregate_snapshots([a.snapshot(), b.snapshot()])
        assert agg["workers"] == 2
        assert agg["counts"]["served"] == 4
        assert agg["counts"]["expired"] == 1
        assert agg["ood"] == {
            "scored_total": 4, "flagged_total": 1, "lifetime_rate": 0.25,
        }

    def test_empty_is_all_zero(self):
        agg = aggregate_snapshots([])
        assert agg == {"workers": 0, "counts": {},
                       "ood": {"scored_total": 0, "flagged_total": 0}}


class TestWorkerPoolObservability:
    def test_trace_id_rides_request_to_response_payload(self, artifact, rng):
        graph_payload = make_graph_payload(rng)
        from repro.serve import graph_from_json

        graph = graph_from_json(graph_payload, schema=SCHEMA)
        with WorkerPool(artifact, num_workers=1, flush_timeout=0.005) as pool:
            handle = pool.submit(graph, trace_id="abc123def4567890")
            assert handle.trace_id == "abc123def4567890"
            result = handle.result(timeout=30.0)
            plain = pool.submit(graph).result(timeout=30.0)
        assert result["trace_id"] == "abc123def4567890"
        assert "trace_id" not in plain  # untraced requests stay untouched

    def test_worker_stats_aggregate_after_drain(self, artifact, rng):
        from repro.serve import graph_from_json

        graphs = [graph_from_json(make_graph_payload(rng, nodes=5 + i), schema=SCHEMA)
                  for i in range(4)]
        pool = WorkerPool(artifact, num_workers=2, flush_timeout=0.005).start()
        try:
            handles = [pool.submit(g) for g in graphs]
            for handle in handles:
                handle.result(timeout=30.0)
        finally:
            pool.stop()
        # Workers publish a final snapshot before exiting; stop() joins
        # them and then the stats collector, so this is deterministic.
        snapshot = pool.stats_snapshot()
        aggregate = snapshot["aggregate"]
        assert aggregate["counts"]["served"] == 4
        assert aggregate["counts"]["received"] == 4
        assert aggregate["workers"] == len(snapshot["per_worker"]) >= 1
        for worker_snap in snapshot["per_worker"].values():
            assert worker_snap["counts"]["served"] >= 0

    def test_collect_metrics_yields_pool_counters(self, artifact, rng):
        from repro.serve import graph_from_json

        graph = graph_from_json(make_graph_payload(rng), schema=SCHEMA)
        pool = WorkerPool(artifact, num_workers=1, flush_timeout=0.005).start()
        try:
            pool.submit(graph).result(timeout=30.0)
        finally:
            pool.stop()
        families = {name: (kind, samples) for name, kind, _help, samples
                    in pool.collect_metrics()}
        assert families["repro_pool_workers"][0] == "gauge"
        outcomes = {labels["outcome"]: value
                    for labels, value in families["repro_pool_requests_total"][1]}
        assert outcomes["served"] == 1.0
        ood = {labels["stat"]: value
               for labels, value in families["repro_pool_ood_total"][1]}
        assert set(ood) == {"scored", "flagged"}

    def test_http_front_end_surfaces_worker_stats_and_metrics(self, artifact, rng):
        pool = WorkerPool(artifact, num_workers=1, flush_timeout=0.005).start()
        server = serve_http(pool, schema=SCHEMA)
        try:
            status, headers, body = http(
                server.url + "/predict", make_graph_payload(rng),
                headers={"X-Trace-Id": "pool-e2e-trace-id"}, timeout=60.0,
            )
            assert status == 200
            assert headers["X-Trace-Id"] == "pool-e2e-trace-id"
            # The worker stamped the propagated id onto the payload.
            assert body["trace_id"] == "pool-e2e-trace-id"
            # Worker snapshots arrive over the side queue; poll briefly.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _status, _headers, stats = http(server.url + "/stats")
                workers = stats.get("workers")
                if workers and workers["aggregate"]["counts"].get("served", 0) >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker stats never aggregated into /stats")
            assert workers["aggregate"]["counts"]["served"] == 1
            _status, _ctype, text = http_text(server.url + "/metrics")
            assert_valid_prometheus(text)
            assert 'repro_pool_requests_total{outcome="served"} 1' in text
            assert "# TYPE repro_pool_workers gauge" in text
        finally:
            server.drain()

    def test_engine_backend_has_no_workers_key(self, rng):
        from repro.encoders import build_model

        model = build_model("gin", FEATURE_DIM, OUT_DIM, np.random.default_rng(3),
                            hidden_dim=8, num_layers=2)
        engine = InferenceEngine.from_models([model], SCHEMA, max_graphs=8,
                                             flush_timeout=0.005)
        server = serve_http(EngineBackend(engine, queue_depth=16), schema=SCHEMA)
        try:
            _status, _headers, stats = http(server.url + "/stats")
            assert "workers" not in stats
        finally:
            server.drain()


class TestCacheUnification:
    def test_unified_shape_for_every_cache(self):
        info = cache_info()
        assert set(info) == {"message_pass", "scatter", "prep"}
        for stats in info.values():
            assert tuple(stats) == CACHE_STAT_KEYS
            assert all(isinstance(v, int) and v >= 0 for v in stats.values())

    def test_legacy_accessor_warns_and_matches(self):
        from repro.graph import segment

        with pytest.warns(DeprecationWarning, match="cache_info"):
            legacy = segment.message_pass_cache_info()
        assert legacy == cache_info()["message_pass"]
