"""Composite functions: softmax family and segment reductions."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.autograd.grad_check import check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 4)))
        out = F.softmax(x).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), atol=1e-12)
        assert (out > 0).all()

    def test_softmax_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_stability_extreme_logits(self):
        x = Tensor(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        out = F.softmax(x).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0], [1.0, 0.0], atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )

    def test_logsumexp_matches_numpy(self, rng):
        x = rng.normal(size=(3, 5))
        expected = np.log(np.exp(x).sum(axis=1))
        np.testing.assert_allclose(F.logsumexp(Tensor(x), axis=1).data, expected, atol=1e-10)

    def test_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        coeffs = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda: (F.softmax(x) * coeffs).sum(), [x])

    def test_log_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: F.log_softmax(x)[(np.arange(3), np.array([0, 1, 2]))].sum(), [x])


class TestSegmentOps:
    def test_segment_sum_values(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = F.segment_sum(x, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [7.0]])

    def test_segment_sum_empty_segment_is_zero(self):
        x = Tensor(np.array([[1.0], [2.0]]))
        out = F.segment_sum(x, np.array([0, 2]), 3)
        np.testing.assert_allclose(out.data, [[1.0], [0.0], [2.0]])

    def test_segment_mean_values(self):
        x = Tensor(np.array([[2.0], [4.0], [9.0]]))
        out = F.segment_mean(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [9.0]])

    def test_segment_sum_after_in_place_id_mutation(self):
        """The scatter-operator cache must revalidate, not serve stale ids.

        The cache keys on the index buffer's address; overwriting the
        same buffer with different ids (dynamic-graph serving) must be a
        miss — a stale CSC operator would silently mis-aggregate.
        """
        x = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        ids = np.array([0, 0, 1, 1])
        out = F.segment_sum(x, ids, 2)
        np.testing.assert_allclose(out.data, [[3.0], [7.0]])
        ids[:] = [1, 1, 0, 0]  # same buffer, new contents
        out = F.segment_sum(x, ids, 2)
        np.testing.assert_allclose(out.data, [[7.0], [3.0]])

    def test_segment_max_values_and_empty(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]))
        out = F.segment_max(x, np.array([0, 0, 2]), 3, empty_value=-1.0)
        np.testing.assert_allclose(out.data, [5.0, -1.0, 3.0])

    def test_segment_softmax_normalises_per_segment(self, rng):
        x = Tensor(rng.normal(size=6))
        ids = np.array([0, 0, 0, 1, 1, 2])
        out = F.segment_softmax(x, ids, 3).data
        np.testing.assert_allclose(np.bincount(ids, weights=out), np.ones(3), atol=1e-9)

    def test_segment_sum_gradient(self, rng):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        ids = np.array([0, 1, 0, 2, 1])
        check_gradients(lambda: (F.segment_sum(x, ids, 3) ** 2).sum(), [x])

    def test_segment_mean_gradient(self, rng):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        ids = np.array([0, 1, 0, 2, 1])
        check_gradients(lambda: (F.segment_mean(x, ids, 4) ** 2).sum(), [x])

    def test_segment_max_gradient(self, rng):
        x = Tensor(rng.permutation(10).astype(float).reshape(5, 2), requires_grad=True)
        ids = np.array([0, 1, 0, 1, 1])
        check_gradients(lambda: (F.segment_max(x, ids, 2) ** 2).sum(), [x])

    def test_segment_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=6), requires_grad=True)
        ids = np.array([0, 0, 1, 1, 1, 2])
        coeffs = Tensor(rng.normal(size=6))
        check_gradients(lambda: (F.segment_softmax(x, ids, 3) * coeffs).sum(), [x])

    def test_segment_ids_accept_tensor(self):
        x = Tensor(np.ones((3, 1)))
        ids = Tensor(np.array([0, 1, 1]))
        out = F.segment_sum(x, ids, 2)
        np.testing.assert_allclose(out.data, [[1.0], [2.0]])


class TestDropout:
    def test_dropout_inactive_in_eval(self, rng):
        x = Tensor(np.ones((100,)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_scales_survivors(self, rng):
        x = Tensor(np.ones((10000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_dropout_zero_probability_is_identity(self, rng):
        x = Tensor(np.ones(5))
        assert F.dropout(x, 0.0, training=True, rng=rng) is x
