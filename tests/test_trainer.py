"""Baseline trainer and the batching/evaluation helpers."""

import numpy as np
import pytest

from repro.encoders import build_model
from repro.graph.generators import erdos_renyi
from repro.training import Trainer, TrainerConfig, iterate_minibatches, predict, evaluate_model
from repro.training.seed import seeded_rng


@pytest.fixture
def rng():
    return np.random.default_rng(67)


def toy_graphs(rng, n=30):
    graphs = []
    for i in range(n):
        label = i % 2
        g = erdos_renyi(int(rng.integers(5, 10)), 0.7 if label else 0.15, rng)
        g.y = label
        graphs.append(g)
    return graphs


class TestMinibatches:
    def test_covers_all_graphs(self, rng):
        graphs = toy_graphs(rng, 25)
        seen = sum(b.num_graphs for b in iterate_minibatches(graphs, 8))
        assert seen == 25

    def test_drop_last(self, rng):
        graphs = toy_graphs(rng, 25)
        sizes = [b.num_graphs for b in iterate_minibatches(graphs, 8, drop_last=True)]
        assert sizes == [8, 8, 8]

    def test_small_dataset_single_batch_even_with_drop_last(self, rng):
        graphs = toy_graphs(rng, 5)
        batches = list(iterate_minibatches(graphs, 8, drop_last=True))
        assert len(batches) == 1
        assert batches[0].num_graphs == 5

    def test_shuffles_with_rng(self, rng):
        graphs = toy_graphs(rng, 16)
        b1 = next(iterate_minibatches(graphs, 16, rng=np.random.default_rng(1)))
        b2 = next(iterate_minibatches(graphs, 16, rng=np.random.default_rng(2)))
        assert not np.array_equal(b1.y, b2.y)

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            list(iterate_minibatches(toy_graphs(rng, 4), 0))


class TestTrainer:
    def test_loss_decreases(self, rng):
        graphs = toy_graphs(rng, 40)
        model = build_model("gin", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        trainer = Trainer(model, "multiclass", TrainerConfig(epochs=10, batch_size=16), rng)
        history = trainer.fit(graphs)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_learns_separable_task(self, rng):
        graphs = toy_graphs(rng, 60)
        model = build_model("gin", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        trainer = Trainer(model, "multiclass", TrainerConfig(epochs=15, batch_size=16), rng)
        trainer.fit(graphs)
        assert trainer.evaluate(graphs) > 0.85

    def test_best_state_restored(self, rng):
        graphs = toy_graphs(rng, 40)
        model = build_model("gcn", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        cfg = TrainerConfig(epochs=6, batch_size=16, eval_every=2)
        trainer = Trainer(model, "multiclass", cfg, rng)
        history = trainer.fit(graphs[:30], graphs[30:])
        assert history.best_metric is not None
        # Restored parameters should reproduce the best validation metric.
        assert trainer.evaluate(graphs[30:]) == pytest.approx(history.best_metric)

    def test_early_stopping_halts(self, rng):
        graphs = toy_graphs(rng, 40)
        model = build_model("gcn", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        cfg = TrainerConfig(epochs=50, batch_size=16, eval_every=1, patience=2)
        trainer = Trainer(model, "multiclass", cfg, rng)
        history = trainer.fit(graphs[:30], graphs[30:])
        assert len(history.train_loss) < 50

    def test_rmse_selection_lower_is_better(self, rng):
        graphs = toy_graphs(rng, 30)
        for g in graphs:
            g.y = np.array([float(g.num_nodes)])
        model = build_model("gcn", 1, 1, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        cfg = TrainerConfig(epochs=4, batch_size=16, eval_every=1)
        trainer = Trainer(model, "regression", cfg, rng, metric="rmse")
        history = trainer.fit(graphs[:20], graphs[20:])
        assert history.best_metric == min(history.valid_metric)


class TestEvaluationHelpers:
    def test_predict_shapes(self, rng):
        graphs = toy_graphs(rng, 10)
        model = build_model("gin", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        outputs = predict(model, graphs)
        assert outputs.shape == (10, 2)

    def test_predict_leaves_model_in_train_mode(self, rng):
        graphs = toy_graphs(rng, 4)
        model = build_model("gin", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        predict(model, graphs)
        assert model.training

    def test_evaluate_model_accuracy(self, rng):
        graphs = toy_graphs(rng, 10)
        model = build_model("gin", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        score = evaluate_model(model, graphs, "accuracy")
        assert 0.0 <= score <= 1.0


class TestSeededRng:
    def test_reproducible(self):
        a = seeded_rng(0, "model").normal(size=3)
        b = seeded_rng(0, "model").normal(size=3)
        np.testing.assert_allclose(a, b)

    def test_tag_separates_streams(self):
        a = seeded_rng(0, "model").normal(size=3)
        b = seeded_rng(0, "data").normal(size=3)
        assert not np.allclose(a, b)
