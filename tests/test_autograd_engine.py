"""Engine-level behaviour: accumulation, no_grad, detach, graph reuse."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled
from repro.autograd.tensor import as_tensor


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor(3.0, requires_grad=True)
        (x * x).backward()
        np.testing.assert_allclose(x.grad, 6.0)

    def test_nonscalar_backward_requires_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_gradient_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 3).backward(np.array([1.0]))

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        (x * x).backward()
        np.testing.assert_allclose(x.grad, 8.0)

    def test_zero_grad(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x should give dy/dx = 4x, with the shared node
        # visited once in topological order.
        x = Tensor(3.0, requires_grad=True)
        y = x * x
        (y + y).backward()
        np.testing.assert_allclose(x.grad, 12.0)

    def test_reused_tensor_in_one_expression(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        ((x * x) * x).sum().backward()  # d/dx x^3 = 3x^2
        np.testing.assert_allclose(x.grad, [3.0, 12.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_constant_branch_gets_no_gradient(self):
        x = Tensor(1.0, requires_grad=True)
        c = Tensor(5.0)
        (x * c).backward()
        assert c.grad is None
        np.testing.assert_allclose(x.grad, 5.0)


class TestGradMode:
    def test_no_grad_blocks_tape(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * x
        assert not y.requires_grad
        assert not y._parents

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * x).detach()
        z = y * x
        z.backward()
        np.testing.assert_allclose(x.grad, 4.0)  # only the direct factor


class TestConstruction:
    def test_int_data_promoted_when_requires_grad(self):
        t = Tensor(np.array([1, 2, 3]), requires_grad=True)
        assert t.dtype == np.float64

    def test_int_data_kept_without_grad(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_as_tensor_passthrough(self):
        t = Tensor(1.0)
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = as_tensor(2.5)
        assert isinstance(t, Tensor)
        assert t.item() == 2.5

    def test_from_tensor_copies_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_allclose(b.data, a.data)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_properties(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_comparisons_return_numpy(self):
        a, b = Tensor([1.0, 3.0]), Tensor([2.0, 2.0])
        np.testing.assert_array_equal(a > b, [False, True])
        np.testing.assert_array_equal(a < b, [True, False])
        np.testing.assert_array_equal(a >= Tensor([1.0, 4.0]), [True, False])
        np.testing.assert_array_equal(a <= 1.0, [True, False])

    def test_copy_is_independent(self):
        a = Tensor([1.0, 2.0])
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0
