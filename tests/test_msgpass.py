"""Fused message passing: operator parity, cache discipline, conv ports.

The contract (docs/ARCHITECTURE.md "Fused message passing"): the cached
:class:`~repro.autograd.functional.MessagePassOperator` collapses every
fixed-weight conv aggregate into one normalised-adjacency matmul that is
**bitwise** equal — forward and backward — to the eager
gather -> scale -> scatter chain it replaced (re-runnable on demand via
:func:`~repro.graph.segment.eager_message_pass`).  The operator cache is
keyed on the edge-index buffer with snapshot revalidation, so in-place
mutation is a rebuild, never a stale hit; float32 and float64 get
distinct operators; and the seed-flat block-diagonal operator matches K
per-seed applications bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from encoder_specs import ENCODER_SPECS, STACKABLE_SPECS, spec_params
from repro.autograd import Tensor, functional as F, inference_mode
from repro.autograd.tensor import compute_dtype
from repro.encoders import build_model
from repro.encoders.conv import GINConv, SeedGINConv
from repro.graph import segment
from repro.graph.data import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.graph.utils import SeedEdgeIndex
from repro.nn.layers import stack_seed_modules
from repro.obs import cache_info as obs_cache_info
from repro.serve import FeatureSchema, InferenceEngine
from repro.serve.engine import _TopologyInterner

NUM_NODES = 23


def _random_edges(num_nodes=NUM_NODES, num_edges=40, seed=3):
    """A messy directed multigraph: random endpoints plus duplicate edges."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    edges = np.stack([src, dst])
    return np.concatenate([edges, edges[:, :5]], axis=1).astype(np.int64)


def _feature_batch(rng, count=4, feature_dim=5):
    graphs = []
    for _ in range(count):
        g = erdos_renyi(int(rng.integers(6, 12)), 0.5, rng)
        g.x = rng.normal(size=(g.num_nodes, feature_dim))
        graphs.append(g)
    return GraphBatch.from_graphs(graphs)


class TestOperatorParity:
    """Fused sparse matmul == eager three-pass chain, bitwise, fwd + bwd."""

    @pytest.mark.parametrize("norm", segment.NORM_KINDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
    def test_fused_matches_eager_forward_and_backward(self, norm, dtype):
        edges = _random_edges()
        results = {}
        with compute_dtype(dtype):
            for mode in ("fused", "eager"):
                rng = np.random.default_rng(5)
                x = Tensor(rng.normal(size=(NUM_NODES, 6)), requires_grad=True)
                upstream = Tensor(rng.normal(size=(NUM_NODES, 6)))
                operator = segment.message_pass_operator(
                    edges, NUM_NODES, norm=norm, dtype=x.data.dtype
                )
                if mode == "eager":
                    with segment.eager_message_pass():
                        assert not segment.fused_message_pass_enabled()
                        out = F.message_pass(operator, x)
                        (out * upstream).sum().backward()
                else:
                    assert segment.fused_message_pass_enabled()
                    out = F.message_pass(operator, x)
                    (out * upstream).sum().backward()
                assert out.data.dtype == np.dtype(dtype)
                results[mode] = (out.data, x.grad)
        np.testing.assert_array_equal(results["fused"][0], results["eager"][0])
        np.testing.assert_array_equal(results["fused"][1], results["eager"][1])

    def test_tape_free_matches_taped(self):
        edges = _random_edges(seed=8)
        operator = segment.message_pass_operator(edges, NUM_NODES, norm="gcn")
        x = Tensor(np.random.default_rng(0).normal(size=(NUM_NODES, 4)), requires_grad=True)
        taped = F.message_pass(operator, x)
        with inference_mode():
            tape_free = F.message_pass(operator, x)
        np.testing.assert_array_equal(taped.data, tape_free.data)
        assert taped._parents and not tape_free._parents

    @pytest.mark.parametrize("norm", segment.NORM_KINDS)
    def test_empty_graph(self, norm):
        empty = np.zeros((2, 0), dtype=np.int64)
        operator = segment.message_pass_operator(empty, 5, norm=norm)
        x = Tensor(np.random.default_rng(1).normal(size=(5, 3)), requires_grad=True)
        out = F.message_pass(operator, x)
        if norm == "gcn":
            # Self loops only, every degree is 1: the aggregate is exactly x.
            np.testing.assert_array_equal(out.data, x.data)
        else:
            np.testing.assert_array_equal(out.data, np.zeros((5, 3)))
        out.sum().backward()
        assert np.all(np.isfinite(x.grad))

    def test_rejects_wrong_row_count(self):
        operator = segment.message_pass_operator(_random_edges(), NUM_NODES, norm="sum")
        with pytest.raises(ValueError, match="input rows"):
            operator.matmul(np.zeros((NUM_NODES + 1, 2)))

    def test_rejects_unknown_norm(self):
        with pytest.raises(ValueError, match="norm kind"):
            segment.message_pass_operator(_random_edges(), NUM_NODES, norm="median")


class TestRosterFusedEagerParity:
    """Every ported conv (and its Seed* stack) is bitwise fused == eager."""

    @staticmethod
    def _forward_backward(build_model_fn, batch, mode):
        model = build_model_fn()
        if mode == "eager":
            with segment.eager_message_pass():
                logits = model(batch)
                upstream = Tensor(np.random.default_rng(1).normal(size=logits.shape))
                (logits * upstream).sum().backward()
        else:
            logits = model(batch)
            upstream = Tensor(np.random.default_rng(1).normal(size=logits.shape))
            (logits * upstream).sum().backward()
        grads = {
            name: p.grad.copy()
            for name, p in model.named_parameters()
            if p.grad is not None
        }
        return logits.data, grads

    def _assert_parity(self, build_model_fn, batch, label):
        fused_logits, fused_grads = self._forward_backward(build_model_fn, batch, "fused")
        eager_logits, eager_grads = self._forward_backward(build_model_fn, batch, "eager")
        np.testing.assert_array_equal(fused_logits, eager_logits, err_msg=label)
        assert fused_grads.keys() == eager_grads.keys()
        for name in fused_grads:
            np.testing.assert_array_equal(
                fused_grads[name], eager_grads[name], err_msg=f"{label} {name}"
            )

    @pytest.mark.parametrize("spec", spec_params(ENCODER_SPECS))
    def test_single_model(self, spec):
        batch = _feature_batch(np.random.default_rng(9))
        self._assert_parity(lambda: spec.factory(5, 3)(0), batch, spec.name)

    @pytest.mark.parametrize("spec", spec_params(STACKABLE_SPECS))
    def test_seed_stacked(self, spec):
        batch = _feature_batch(np.random.default_rng(10))
        self._assert_parity(
            lambda: stack_seed_modules([spec.factory(5, 3)(s) for s in (0, 1)]),
            batch,
            f"{spec.name} stacked",
        )


@st.composite
def _edges_and_nodes(draw):
    num_nodes = draw(st.integers(2, 8))
    num_edges = draw(st.integers(1, 12))
    endpoints = st.lists(
        st.integers(0, num_nodes - 1), min_size=num_edges, max_size=num_edges
    )
    edges = np.array([draw(endpoints), draw(endpoints)], dtype=np.int64)
    return edges, num_nodes


class TestOperatorCache:
    def setup_method(self):
        segment.clear_message_pass_cache()

    def test_same_buffer_is_a_hit(self):
        edges = _random_edges()
        first = segment.message_pass_operator(edges, NUM_NODES, norm="gcn")
        second = segment.message_pass_operator(edges, NUM_NODES, norm="gcn")
        assert first is second
        info = obs_cache_info()["message_pass"]
        assert info["misses"] == 1 and info["hits"] == 1

    def test_cache_is_bounded(self):
        arrays = [_random_edges(seed=s) for s in range(40)]
        for edges in arrays:
            segment.message_pass_operator(edges, NUM_NODES, norm="sum")
        assert obs_cache_info()["message_pass"]["size"] <= 16

    @settings(max_examples=25, deadline=None)
    @given(_edges_and_nodes(), st.sampled_from(segment.NORM_KINDS))
    def test_mutating_cached_buffer_is_a_rebuild_never_stale(self, edges_nodes, norm):
        edges, num_nodes = edges_nodes
        stale = segment.message_pass_operator(edges, num_nodes, norm=norm)
        edges[0, 0] = (edges[0, 0] + 1) % num_nodes  # in-place mutation
        rebuilt = segment.message_pass_operator(edges, num_nodes, norm=norm)
        assert rebuilt is not stale
        fresh = segment.message_pass_operator(edges.copy(), num_nodes, norm=norm)
        np.testing.assert_array_equal(rebuilt.src, fresh.src)
        np.testing.assert_array_equal(rebuilt.dst, fresh.dst)
        np.testing.assert_array_equal(rebuilt.weights, fresh.weights)

    @settings(max_examples=25, deadline=None)
    @given(_edges_and_nodes(), st.sampled_from(segment.NORM_KINDS))
    def test_dtypes_get_distinct_operators(self, edges_nodes, norm):
        edges, num_nodes = edges_nodes
        op64 = segment.message_pass_operator(edges, num_nodes, norm=norm, dtype=np.float64)
        op32 = segment.message_pass_operator(edges, num_nodes, norm=norm, dtype=np.float32)
        assert op64 is not op32
        assert op64.dtype == np.float64 and op32.dtype == np.float32
        # The float32 weights are the one-time cast of the float64 ones —
        # exactly the per-forward cast the eager path used to apply.
        np.testing.assert_array_equal(op32.weights, op64.weights.astype(np.float32))

    @settings(max_examples=25, deadline=None)
    @given(_edges_and_nodes(), st.integers(1, 3), st.sampled_from(segment.NORM_KINDS))
    def test_seed_flat_matches_per_seed_bitwise(self, edges_nodes, num_seeds, norm):
        edges, num_nodes = edges_nodes
        x = np.random.default_rng(0).normal(size=(num_seeds, num_nodes, 4))
        flat_op = segment.message_pass_operator(edges, num_nodes, norm=norm, num_seeds=num_seeds)
        flat_out = flat_op.matmul(x.reshape(num_seeds * num_nodes, 4))
        single_op = segment.message_pass_operator(edges, num_nodes, norm=norm)
        for k in range(num_seeds):
            np.testing.assert_array_equal(
                flat_out.reshape(num_seeds, num_nodes, 4)[k], single_op.matmul(x[k])
            )
        # The SeedEdgeIndex disjoint-union path reproduces the tiled operator.
        seed_edges = SeedEdgeIndex.from_shared(edges, num_seeds, num_nodes)
        seed_op = segment.message_pass_operator(seed_edges, num_nodes, norm=norm)
        np.testing.assert_array_equal(
            seed_op.matmul(x.reshape(num_seeds * num_nodes, 4)), flat_out
        )


class TestGINEmptyEdges:
    """Satellite regression: edge-free graphs get constant zeros, not a
    taped full-size multiply — forward and backward unchanged."""

    def test_forward_and_backward_match_manual_combine(self):
        num_nodes, feature_dim = 6, 4
        x_data = np.random.default_rng(2).normal(size=(num_nodes, feature_dim))
        empty = np.zeros((2, 0), dtype=np.int64)
        conv = GINConv(feature_dim, 3, np.random.default_rng(0))
        reference = GINConv(feature_dim, 3, np.random.default_rng(0))
        x_conv = Tensor(x_data.copy(), requires_grad=True)
        x_ref = Tensor(x_data.copy(), requires_grad=True)
        out = conv(x_conv, empty, num_nodes)
        # With nothing aggregated the combine collapses to (1 + eps) * x.
        expected = reference.mlp(x_ref * (reference.eps + 1.0))
        np.testing.assert_array_equal(out.data, expected.data)
        out.sum().backward()
        expected.sum().backward()
        np.testing.assert_array_equal(x_conv.grad, x_ref.grad)
        np.testing.assert_array_equal(conv.eps.grad, reference.eps.grad)

    def test_aggregate_is_untaped_constant(self):
        conv = GINConv(4, 3, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(3).normal(size=(5, 4)), requires_grad=True)
        out = conv(x, np.zeros((2, 0), dtype=np.int64), 5)
        out.sum().backward()
        assert x.grad is not None and np.all(np.isfinite(x.grad))

    def test_seed_stacked_empty_edges(self):
        convs = [GINConv(4, 3, np.random.default_rng(s)) for s in (0, 1)]
        stacked = SeedGINConv.from_layers(convs)
        x = Tensor(np.random.default_rng(4).normal(size=(2, 5, 4)), requires_grad=True)
        out = stacked(x, np.zeros((2, 0), dtype=np.int64), 5)
        assert out.shape == (2, 5, 3)
        out.sum().backward()
        assert x.grad is not None and np.all(np.isfinite(x.grad))


class TestServingTopologyReuse:
    """Identical-topology replays must hit the operator cache via the
    engine's topology interner instead of rebuilding per pack."""

    SCHEMA = FeatureSchema(feature_dim=4, out_dim=3, task_type="multiclass", num_classes=3)

    def _graphs(self, rng, count=3):
        graphs = []
        for _ in range(count):
            g = erdos_renyi(int(rng.integers(5, 10)), 0.5, rng)
            g.x = rng.normal(size=(g.num_nodes, 4))
            graphs.append(g)
        return graphs

    def _engine(self, **kwargs):
        model = build_model(
            "gcn", 4, 3, np.random.default_rng(1), hidden_dim=8, num_layers=2
        )
        return InferenceEngine.from_models([model], self.SCHEMA, **kwargs)

    def test_interner_returns_stored_object_for_equal_content(self):
        interner = _TopologyInterner()
        first = np.arange(10)
        assert interner.canonical(first) is first
        assert interner.canonical(first.copy()) is first
        other = np.arange(5)
        assert interner.canonical(other) is other

    def test_replay_does_not_rebuild_operators(self):
        engine = self._engine()
        graphs = self._graphs(np.random.default_rng(11))
        segment.clear_message_pass_cache()
        engine.predict(graphs)
        before = obs_cache_info()["message_pass"]
        engine.predict(graphs)  # identical topology, fresh pack arrays
        after = obs_cache_info()["message_pass"]
        assert after["misses"] == before["misses"]
        assert after["rebuilds"] == before["rebuilds"]
        assert after["hits"] > before["hits"]

    def test_reuse_can_be_disabled(self):
        engine = self._engine(reuse_topology=False)
        graphs = self._graphs(np.random.default_rng(12))
        segment.clear_message_pass_cache()
        engine.predict(graphs)
        before = obs_cache_info()["message_pass"]
        engine.predict(graphs)
        after = obs_cache_info()["message_pass"]
        assert after["misses"] > before["misses"]
