"""Failure injection: malformed inputs and degenerate training regimes."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import OODGNN, OODGNNConfig, OODGNNTrainer, RandomFourierFeatures, SampleWeightLearner
from repro.encoders import build_model
from repro.graph.data import Graph, GraphBatch
from repro.graph.generators import erdos_renyi
from repro.nn import cross_entropy
from repro.training import Trainer, TrainerConfig


@pytest.fixture
def rng():
    return np.random.default_rng(107)


def labelled(graphs):
    for i, g in enumerate(graphs):
        g.y = i % 2
    return graphs


class TestDegenerateGraphs:
    def test_single_node_graph_trains(self, rng):
        graphs = labelled([Graph(x=np.ones((1, 1)), edge_index=np.zeros((2, 0))) for _ in range(8)])
        model = build_model("gin", 1, 2, rng, hidden_dim=8, num_layers=2)
        trainer = Trainer(model, "multiclass", TrainerConfig(epochs=1, batch_size=4), rng)
        history = trainer.fit(graphs)
        assert np.isfinite(history.train_loss).all()

    def test_batch_of_edgeless_graphs(self, rng):
        graphs = labelled([Graph(x=np.ones((3, 2)), edge_index=np.zeros((2, 0))) for _ in range(4)])
        batch = GraphBatch.from_graphs(graphs)
        for name in ("gcn", "gin", "pna", "sage"):
            model = build_model(name, 2, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
            out = model(batch)
            assert np.isfinite(out.data).all(), name

    def test_mixed_sizes_extreme(self, rng):
        big = erdos_renyi(200, 0.05, rng)
        small = erdos_renyi(2, 1.0, rng)
        graphs = labelled([big, small] * 2)
        batch = GraphBatch.from_graphs(graphs)
        model = build_model("sagpool", 1, 2, rng, hidden_dim=8, num_layers=2)
        assert model(batch).shape == (4, 2)


class TestExtremeValues:
    def test_huge_feature_scale_stays_finite(self, rng):
        graphs = labelled([erdos_renyi(6, 0.5, rng) for _ in range(4)])
        for g in graphs:
            g.x = g.x * 1e6
        batch = GraphBatch.from_graphs(graphs)
        model = build_model("gcn", 1, 2, rng, hidden_dim=8, num_layers=2)
        loss = cross_entropy(model(batch), batch.y)
        loss.backward()
        assert np.isfinite(float(loss.data))

    def test_weight_learner_constant_representations(self, rng):
        """Zero-variance representations: no dependence to remove, the
        learner must not blow up (standardisation guards the 0/0)."""
        z = np.ones((32, 8))
        rff = RandomFourierFeatures(num_functions=2, rng=rng)
        learner = SampleWeightLearner(rff, epochs=3, lr=0.05)
        result = learner.learn(z)
        assert np.isfinite(result.final_loss)
        assert result.weights.mean() == pytest.approx(1.0)

    def test_weight_learner_single_pair_tiny_batch(self, rng):
        z = rng.normal(size=(3, 2))
        rff = RandomFourierFeatures(num_functions=1, rng=rng)
        learner = SampleWeightLearner(rff, epochs=2, lr=0.05)
        assert np.isfinite(learner.learn(z).final_loss)


class TestTrainerRobustness:
    def test_all_nan_task_column(self, rng):
        """A task with no observed labels must not poison the loss."""
        graphs = []
        for i in range(8):
            g = erdos_renyi(5, 0.5, rng)
            g.y = np.array([float(i % 2), np.nan])
            graphs.append(g)
        model = build_model("gin", 1, 2, rng, hidden_dim=8, num_layers=2)
        trainer = Trainer(model, "binary", TrainerConfig(epochs=1, batch_size=4), rng, metric="rocauc")
        history = trainer.fit(graphs)
        assert np.isfinite(history.train_loss).all()

    def test_ood_gnn_batch_larger_than_dataset(self, rng):
        graphs = labelled([erdos_renyi(5, 0.5, rng) for _ in range(6)])
        cfg = OODGNNConfig(hidden_dim=8, num_layers=2, epochs=2, batch_size=64, reweight_epochs=2)
        model = OODGNN(1, 2, rng, config=cfg)
        trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
        history = trainer.fit(graphs)
        assert len(history.train_loss) == 2

    def test_single_class_training_set(self, rng):
        graphs = [erdos_renyi(5, 0.5, rng) for _ in range(6)]
        for g in graphs:
            g.y = 1
        model = build_model("gcn", 1, 2, rng, hidden_dim=8, num_layers=2)
        trainer = Trainer(model, "multiclass", TrainerConfig(epochs=1, batch_size=4), rng)
        history = trainer.fit(graphs)
        assert np.isfinite(history.train_loss).all()

    def test_nan_gradient_guard_in_tensor(self):
        """log of a negative produces NaN immediately, not silently later."""
        t = Tensor(np.array([-1.0]), requires_grad=True)
        with np.errstate(invalid="ignore"):
            out = t.log()
        assert np.isnan(out.data).any()
