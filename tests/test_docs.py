"""Documentation stays truthful: links resolve, doctest blocks execute.

Runs the same checks as ``tools/check_docs.py`` (and the CI docs job) so
that a broken README example or a dangling cross-reference fails tier-1
locally, not just in CI.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location("check_docs", REPO_ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
sys.modules["check_docs"] = check_docs
spec.loader.exec_module(check_docs)


def test_doc_files_exist():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()


def test_links_and_path_references_resolve():
    problems = []
    for doc in check_docs.DOC_FILES:
        problems.extend(check_docs.check_links(doc))
    assert not problems, "\n".join(problems)


def test_doctest_blocks_execute():
    problems = []
    for doc in check_docs.DOC_FILES:
        problems.extend(check_docs.check_doctests(doc))
    assert not problems, "\n".join(problems)


def test_github_slug_rules():
    assert check_docs.github_slug("Reweighting backends") == "reweighting-backends"
    assert check_docs.github_slug("Algorithm 1 in this codebase") == "algorithm-1-in-this-codebase"
    assert check_docs.github_slug("The autograd substrate (`repro/autograd`)") \
        == "the-autograd-substrate-reproautograd"
