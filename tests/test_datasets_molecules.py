"""Molecule generator: scaffolds, functional groups, labels, splits."""

import numpy as np
import pytest

from repro.datasets import MoleculeGenerator, FUNCTIONAL_GROUPS
from repro.datasets.molecules import MoleculeConfig, FEATURE_DIM, ATOM_TYPES
from repro.datasets.splits import scaffold_split
from repro.graph.utils import is_undirected


@pytest.fixture
def rng():
    return np.random.default_rng(83)


@pytest.fixture
def generator():
    return MoleculeGenerator(num_tasks=2, task_type="binary", seed=7)


class TestScaffolds:
    def test_deterministic_per_id(self, generator):
        a = generator.build_scaffold(3)
        b = generator.build_scaffold(3)
        assert a[0] == b[0]
        assert a[1] == b[1]

    def test_distinct_ids_distinct_structures(self, generator):
        structures = {tuple(generator.build_scaffold(i)[1]) for i in range(10)}
        assert len(structures) > 5

    def test_ring_atoms_flagged(self, generator):
        atoms, bonds, flags = generator.build_scaffold(0)
        assert len(flags) == len(atoms)
        np.testing.assert_allclose(flags, 1.0)

    def test_preferences_are_distribution(self, generator):
        p = generator.group_preferences(4)
        assert p.shape == (len(FUNCTIONAL_GROUPS),)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()

    def test_preferences_vary_across_scaffolds(self, generator):
        a = generator.group_preferences(0)
        b = generator.group_preferences(1)
        assert not np.allclose(a, b)


class TestMolecules:
    def test_sampled_molecule_valid(self, generator, rng):
        g = generator.sample_molecule(rng)
        assert is_undirected(g.edge_index)
        assert g.x.shape[1] == FEATURE_DIM
        assert "scaffold" in g.meta
        # One-hot atom type block sums to one.
        np.testing.assert_allclose(g.x[:, : len(ATOM_TYPES)].sum(axis=1), 1.0)

    def test_binary_labels_causal_up_to_noise(self, rng):
        """With label noise off, labels are a pure function of groups."""
        gen = MoleculeGenerator(1, "binary", seed=3, config=MoleculeConfig(label_noise=0.0))
        for _ in range(20):
            g = gen.sample_molecule(rng)
            counts = g.meta["group_counts"]
            expected = float(counts[gen._task_groups[0]].sum() > 0)
            assert float(np.asarray(g.y).reshape(-1)[0]) == expected

    def test_label_noise_flips_some(self, rng):
        noisy = MoleculeGenerator(1, "binary", seed=3, config=MoleculeConfig(label_noise=0.5))
        clean = MoleculeGenerator(1, "binary", seed=3, config=MoleculeConfig(label_noise=0.0))
        r1, r2 = np.random.default_rng(0), np.random.default_rng(0)
        flips = 0
        for _ in range(40):
            a = noisy.sample_molecule(r1)
            b = clean.sample_molecule(r2)
            flips += float(np.asarray(a.y).reshape(-1)[0]) != float(np.asarray(b.y).reshape(-1)[0])
        assert flips > 5

    def test_missing_task_labels(self, rng):
        gen = MoleculeGenerator(
            8, "binary", seed=3, config=MoleculeConfig(task_missing_rate=0.5)
        )
        labels = np.stack([np.asarray(gen.sample_molecule(rng).y) for _ in range(30)])
        nan_rate = np.isnan(labels).mean()
        assert 0.3 < nan_rate < 0.7

    def test_regression_targets_track_groups(self, rng):
        gen = MoleculeGenerator(1, "regression", seed=3)
        graphs = [gen.sample_molecule(rng) for _ in range(60)]
        ys = np.array([float(np.asarray(g.y).reshape(-1)[0]) for g in graphs])
        predicted = np.array(
            [(gen._betas @ g.meta["group_counts"]).item() for g in graphs]
        )
        assert np.corrcoef(ys, predicted)[0, 1] > 0.7

    def test_scaffold_label_correlation_is_spurious(self, rng):
        """High spurious strength makes scaffold identity predictive of
        the label within the sampled population."""
        gen = MoleculeGenerator(
            1, "binary", seed=5,
            config=MoleculeConfig(spurious_strength=4.0, label_noise=0.0, num_scaffolds=10),
        )
        from collections import defaultdict

        by_scaffold = defaultdict(list)
        for _ in range(300):
            g = gen.sample_molecule(rng)
            by_scaffold[g.meta["scaffold"]].append(float(np.asarray(g.y).reshape(-1)[0]))
        purities = [max(np.mean(v), 1 - np.mean(v)) for v in by_scaffold.values() if len(v) >= 10]
        assert np.mean(purities) > 0.7

    def test_invalid_task_type(self):
        with pytest.raises(ValueError):
            MoleculeGenerator(1, "ranking", seed=0)


class TestScaffoldSplitIntegration:
    def test_split_scaffolds_disjoint(self, generator, rng):
        graphs = generator.generate(200, rng)
        train, valid, test = scaffold_split(graphs)
        s = lambda gs: {g.meta["scaffold"] for g in gs}
        assert not (s(train) & s(test))
        assert not (s(train) & s(valid))
        assert len(train) > len(valid)
        assert len(train) > len(test)

    def test_zipf_concentrates_train(self, generator, rng):
        graphs = generator.generate(300, rng)
        train, _valid, test = scaffold_split(graphs)
        # Train holds few big scaffolds; test many rare ones.
        train_scaffolds = {g.meta["scaffold"] for g in train}
        test_scaffolds = {g.meta["scaffold"] for g in test}
        assert len(train_scaffolds) < len(test_scaffolds)
