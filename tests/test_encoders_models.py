"""Model assemblies and the registry."""

import numpy as np
import pytest

from repro.graph import GraphBatch
from repro.graph.generators import erdos_renyi
from repro.encoders import build_model, available_models, compute_pna_degree_scale, GraphClassifier
from repro.encoders.base import StackedEncoder, VirtualNodeEncoder
from repro.encoders.conv import GINConv
from repro.nn import cross_entropy


@pytest.fixture
def rng():
    return np.random.default_rng(41)


@pytest.fixture
def batch(rng):
    graphs = []
    for i in range(6):
        g = erdos_renyi(int(rng.integers(4, 9)), 0.5, rng)
        g.y = i % 2
        graphs.append(g)
    return GraphBatch.from_graphs(graphs)


class TestRegistry:
    def test_all_names_buildable_and_runnable(self, batch):
        for name in available_models():
            model = build_model(name, 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
            logits = model(batch)
            assert logits.shape == (batch.num_graphs, 2), name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_model("graph-transformer", 1, 2, np.random.default_rng(0))

    def test_all_parameters_receive_gradients(self, batch):
        for name in available_models():
            model = build_model(name, 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
            loss = cross_entropy(model(batch), batch.y)
            loss.backward()
            missing = [n for n, p in model.named_parameters() if p.grad is None]
            assert not missing, f"{name}: no gradient for {missing}"

    def test_pna_uses_mean_readout_stability(self, batch):
        model = build_model("pna", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        out = model(batch)
        assert np.isfinite(out.data).all()


class TestDegreeScale:
    def test_empty_list(self):
        assert compute_pna_degree_scale([]) == 1.0

    def test_positive_for_real_graphs(self, rng):
        graphs = [erdos_renyi(8, 0.5, rng) for _ in range(3)]
        assert compute_pna_degree_scale(graphs) > 0


class TestGraphClassifier:
    def test_representations_shape(self, rng, batch):
        encoder = StackedEncoder(1, 8, 2, lambda i, o: GINConv(i, o, rng), rng)
        model = GraphClassifier(encoder, 3, rng)
        z = model.representations(batch)
        assert z.shape == (batch.num_graphs, 8)
        assert model(batch).shape == (batch.num_graphs, 3)

    def test_param_count_ood_matches_gin_scale(self):
        # Section 4.8: OOD-GNN has the same parameter count as its GIN
        # backbone (weights are not model parameters) and far fewer than PNA.
        gin = build_model("gin", 9, 1, np.random.default_rng(0), hidden_dim=32, num_layers=3)
        pna = build_model("pna", 9, 1, np.random.default_rng(0), hidden_dim=32, num_layers=3)
        assert pna.num_parameters() > 2 * gin.num_parameters()


class TestEncoders:
    def test_stacked_requires_layer(self, rng):
        with pytest.raises(ValueError):
            StackedEncoder(1, 8, 0, lambda i, o: GINConv(i, o, rng), rng)

    def test_virtual_node_changes_output(self, rng, batch):
        plain = build_model("gin", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        virtual = build_model("gin-virtual", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2)
        assert not np.allclose(plain(batch).data, virtual(batch).data)

    def test_batching_invariance(self, rng):
        """Encoding graphs in one batch == encoding them separately."""
        graphs = [erdos_renyi(6, 0.5, rng) for _ in range(3)]
        for g in graphs:
            g.y = 0
        model = build_model("gcn", 1, 2, np.random.default_rng(1), hidden_dim=8, num_layers=2)
        model.eval()
        together = model(GraphBatch.from_graphs(graphs)).data
        separate = np.concatenate([model(GraphBatch.from_graphs([g])).data for g in graphs])
        np.testing.assert_allclose(together, separate, atol=1e-8)

    def test_readout_options(self, rng, batch):
        for readout in ("sum", "mean", "max"):
            model = build_model("gcn", 1, 2, np.random.default_rng(0), hidden_dim=8, num_layers=2, readout=readout)
            assert model(batch).shape == (batch.num_graphs, 2)
        with pytest.raises(ValueError):
            build_model("gcn", 1, 2, np.random.default_rng(0), readout="median")
