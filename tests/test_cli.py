"""Command-line entry points (python -m repro.run, python -m repro.serve)."""

import json

import pytest

from repro.run import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--dataset", "proteins25"])
        assert args.method == "ood-gnn"
        assert args.seeds == 2

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "proteins25", "--method", "transformer"])

    def test_reweight_flags(self):
        args = build_parser().parse_args(
            ["--dataset", "proteins25", "--batched-seeds", "--sequential-reweight"]
        )
        assert args.batched_seeds and args.sequential_reweight
        assert not build_parser().parse_args(["--dataset", "proteins25"]).sequential_reweight


class TestMain:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "proteins25" in out
        assert "ood-gnn" in out

    def test_requires_dataset(self):
        with pytest.raises(SystemExit):
            main([])

    def test_tiny_run(self, capsys):
        code = main([
            "--dataset", "proteins25", "--method", "gcn",
            "--seeds", "1", "--epochs", "2", "--scale", "0.15",
            "--hidden-dim", "8", "--num-layers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "train" in out
        assert "Test(large)" in out


class TestServe:
    """Smoke test for python -m repro.serve: train -> export -> serve -> query."""

    @pytest.fixture(scope="class")
    def artifact_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "model.npz"
        code = main([
            "--dataset", "proteins25", "--method", "gin",
            "--seeds", "2", "--epochs", "2", "--scale", "0.15",
            "--hidden-dim", "8", "--num-layers", "2", "--batched-seeds",
            "--export-artifact", str(path),
        ])
        assert code == 0 and path.exists()
        return path

    @pytest.fixture(scope="class")
    def requests_path(self, tmp_path_factory):
        from repro.datasets import load_dataset

        dataset = load_dataset("proteins25", seed=0, scale=0.15)
        payload = [
            {"x": g.x.tolist(), "edge_index": g.edge_index.tolist()}
            for g in dataset.tests["Test(large)"][:4]
        ]
        path = tmp_path_factory.mktemp("serve-req") / "requests.json"
        path.write_text(json.dumps(payload))
        return path

    def test_export_artifact_is_seed_ensemble(self, artifact_path):
        from repro.serve import ModelArtifact

        artifact = ModelArtifact.load(artifact_path)
        assert artifact.num_seeds == 2
        assert artifact.spec.method == "gin"
        assert artifact.schema.dataset == "PROTEINS25"

    def test_one_shot_file_mode(self, artifact_path, requests_path, capsys):
        from repro.serve.__main__ import main as serve_main

        code = serve_main([str(artifact_path), "--input", str(requests_path)])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 4
        for line in lines:
            assert line["prediction"] in (0, 1)
            assert len(line["probs"]) == 2
            assert isinstance(line["energy"], float)
            assert line["ood"] is None  # no calibration requested

    def test_calibrated_file_mode(self, artifact_path, requests_path, capsys):
        from repro.serve.__main__ import main as serve_main

        code = serve_main([
            str(artifact_path), "--input", str(requests_path),
            "--calibrate", str(requests_path), "--quantile", "0.5",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "calibrated OOD threshold" in captured.err
        lines = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert all(isinstance(line["ood"], bool) for line in lines)
        # Calibrated at the median of the very same requests: some flagged.
        assert any(line["ood"] for line in lines)

    def test_stdin_streaming_mode(self, artifact_path, requests_path, capsys, monkeypatch):
        import io

        from repro.serve.__main__ import main as serve_main

        requests = json.loads(requests_path.read_text())
        stream = io.StringIO("".join(json.dumps(r) + "\n" for r in requests))
        monkeypatch.setattr("sys.stdin", stream)
        code = serve_main([str(artifact_path), "--stdin", "--flush-timeout", "0.01"])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == len(requests)

    def test_stdin_bad_line_answers_error_and_stream_survives(
        self, artifact_path, requests_path, capsys, monkeypatch
    ):
        import io

        from repro.serve.__main__ import main as serve_main

        good = json.dumps(json.loads(requests_path.read_text())[0])
        stream = io.StringIO("not json\n" + json.dumps({"edge_index": [[], []]}) + "\n" + good + "\n")
        monkeypatch.setattr("sys.stdin", stream)
        code = serve_main([str(artifact_path), "--stdin", "--flush-timeout", "0.01"])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 3
        assert "error" in lines[0]          # malformed JSON
        assert "error" in lines[1]          # missing "x"
        assert lines[2]["prediction"] in (0, 1)  # later requests still served

    def test_requires_a_mode(self, artifact_path):
        from repro.serve.__main__ import main as serve_main

        with pytest.raises(SystemExit):
            serve_main([str(artifact_path)])

    def test_rejects_plain_checkpoint(self, tmp_path, requests_path):
        import numpy as np

        from repro.nn import MLP, save_checkpoint
        from repro.serve.__main__ import main as serve_main

        path = tmp_path / "plain.npz"
        save_checkpoint(MLP([2, 2], np.random.default_rng(0)), path)
        with pytest.raises(ValueError, match="not a model artifact"):
            serve_main([str(path), "--input", str(requests_path)])
