"""Command-line entry points (python -m repro.run, python -m repro.serve)."""

import json

import pytest

from repro.run import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--dataset", "proteins25"])
        assert args.method == "ood-gnn"
        assert args.seeds == 2

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "proteins25", "--method", "transformer"])

    def test_reweight_flags(self):
        args = build_parser().parse_args(
            ["--dataset", "proteins25", "--batched-seeds", "--sequential-reweight"]
        )
        assert args.batched_seeds and args.sequential_reweight
        assert not build_parser().parse_args(["--dataset", "proteins25"]).sequential_reweight


class TestMain:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "proteins25" in out
        assert "ood-gnn" in out

    def test_requires_dataset(self):
        with pytest.raises(SystemExit):
            main([])

    def test_tiny_run(self, capsys):
        code = main([
            "--dataset", "proteins25", "--method", "gcn",
            "--seeds", "1", "--epochs", "2", "--scale", "0.15",
            "--hidden-dim", "8", "--num-layers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "train" in out
        assert "Test(large)" in out


class TestServe:
    """Smoke test for python -m repro.serve: train -> export -> serve -> query."""

    @pytest.fixture(scope="class")
    def artifact_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "model.npz"
        code = main([
            "--dataset", "proteins25", "--method", "gin",
            "--seeds", "2", "--epochs", "2", "--scale", "0.15",
            "--hidden-dim", "8", "--num-layers", "2", "--batched-seeds",
            "--export-artifact", str(path),
        ])
        assert code == 0 and path.exists()
        return path

    @pytest.fixture(scope="class")
    def requests_path(self, tmp_path_factory):
        from repro.datasets import load_dataset

        dataset = load_dataset("proteins25", seed=0, scale=0.15)
        payload = [
            {"x": g.x.tolist(), "edge_index": g.edge_index.tolist()}
            for g in dataset.tests["Test(large)"][:4]
        ]
        path = tmp_path_factory.mktemp("serve-req") / "requests.json"
        path.write_text(json.dumps(payload))
        return path

    def test_export_artifact_is_seed_ensemble(self, artifact_path):
        from repro.serve import ModelArtifact

        artifact = ModelArtifact.load(artifact_path)
        assert artifact.num_seeds == 2
        assert artifact.spec.method == "gin"
        assert artifact.schema.dataset == "PROTEINS25"

    def test_one_shot_file_mode(self, artifact_path, requests_path, capsys):
        from repro.serve.__main__ import main as serve_main

        code = serve_main([str(artifact_path), "--input", str(requests_path)])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 4
        for line in lines:
            assert line["prediction"] in (0, 1)
            assert len(line["probs"]) == 2
            assert isinstance(line["energy"], float)
            assert line["ood"] is None  # no calibration requested

    def test_calibrated_file_mode(self, artifact_path, requests_path, capsys):
        from repro.serve.__main__ import main as serve_main

        code = serve_main([
            str(artifact_path), "--input", str(requests_path),
            "--calibrate", str(requests_path), "--quantile", "0.5",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "calibrated OOD threshold" in captured.err
        lines = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert all(isinstance(line["ood"], bool) for line in lines)
        # Calibrated at the median of the very same requests: some flagged.
        assert any(line["ood"] for line in lines)

    def test_stdin_streaming_mode(self, artifact_path, requests_path, capsys, monkeypatch):
        import io

        from repro.serve.__main__ import main as serve_main

        requests = json.loads(requests_path.read_text())
        stream = io.StringIO("".join(json.dumps(r) + "\n" for r in requests))
        monkeypatch.setattr("sys.stdin", stream)
        code = serve_main([str(artifact_path), "--stdin", "--flush-timeout", "0.01"])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == len(requests)

    def test_stdin_bad_line_answers_error_and_stream_survives(
        self, artifact_path, requests_path, capsys, monkeypatch
    ):
        import io

        from repro.serve.__main__ import main as serve_main

        good = json.dumps(json.loads(requests_path.read_text())[0])
        stream = io.StringIO("not json\n" + json.dumps({"edge_index": [[], []]}) + "\n" + good + "\n")
        monkeypatch.setattr("sys.stdin", stream)
        code = serve_main([str(artifact_path), "--stdin", "--flush-timeout", "0.01"])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 3
        assert "error" in lines[0]          # malformed JSON
        assert "error" in lines[1]          # missing "x"
        assert lines[2]["prediction"] in (0, 1)  # later requests still served

    def test_stdin_interleaved_good_and_bad_lines_keep_stream_order(
        self, artifact_path, requests_path, capsys, monkeypatch
    ):
        """good/bad/good/bad: every line answers in its own position and the
        bad ones carry error objects naming what was wrong."""
        import io

        from repro.serve.__main__ import main as serve_main

        good = json.dumps(json.loads(requests_path.read_text())[0])
        bad_ragged = json.dumps({"x": [[1.0, 2.0], [3.0]]})
        bad_edges = json.dumps({"x": [[0.0] * 4] * 2, "edge_index": [[0], [9]]})
        stream = io.StringIO("\n".join([good, bad_ragged, good, bad_edges]) + "\n")
        monkeypatch.setattr("sys.stdin", stream)
        code = serve_main([str(artifact_path), "--stdin", "--flush-timeout", "0.01"])
        assert code == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 4
        assert lines[0]["prediction"] in (0, 1)
        assert "rectangular" in lines[1]["error"]
        assert lines[2]["prediction"] in (0, 1)
        assert "error" in lines[3]
        assert lines[0]["output"] == lines[2]["output"]  # same request, same answer

    def test_http_mode_serves_and_drains_on_sigterm(self, artifact_path, requests_path):
        """--http end to end as a user would run it: spin the CLI in a
        thread, query over TCP, SIGTERM-equivalent drain, clean exit."""
        import threading
        import time
        import urllib.request

        from repro.serve import __main__ as serve_cli

        captured = {}
        original_serve_http = serve_cli._serve_http
        codes = []
        thread = None
        stop = threading.Event()
        try:
            # Inject the drain trigger (what the SIGTERM handler sets) and
            # capture the bound server so the test can learn the port.
            def hooked(args, artifact, engine, max_nodes):
                from repro.serve import net

                original_bind = net.serve_http

                def capture(*a, **kw):
                    captured["server"] = original_bind(*a, **kw)
                    return captured["server"]

                net.serve_http = capture
                try:
                    return original_serve_http(args, artifact, engine, max_nodes, stop=stop)
                finally:
                    net.serve_http = original_bind

            serve_cli._serve_http = hooked

            def run():
                codes.append(serve_cli.main([
                    str(artifact_path), "--http", "--port", "0", "--flush-timeout", "0.005",
                ]))

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            deadline = time.monotonic() + 30.0
            while "server" not in captured and time.monotonic() < deadline:
                time.sleep(0.01)
            server = captured["server"]
            request = json.loads(requests_path.read_text())[0]
            req = urllib.request.Request(
                server.url + "/predict", data=json.dumps(request).encode(),
                headers={"Content-Type": "application/json"},
            )
            body = json.loads(urllib.request.urlopen(req, timeout=30.0).read())
            assert body["prediction"] in (0, 1)
            health = json.loads(urllib.request.urlopen(server.url + "/healthz", timeout=30.0).read())
            assert health == {"status": "ok"}
            stop.set()  # what the SIGTERM handler does
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert codes == [0]
            assert server.draining
        finally:
            serve_cli._serve_http = original_serve_http
            stop.set()
            if thread is not None:
                thread.join(timeout=10.0)

    def test_http_mode_is_exclusive_with_stdin(self, artifact_path):
        from repro.serve.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([str(artifact_path), "--stdin", "--http"])

    def test_requires_a_mode(self, artifact_path):
        from repro.serve.__main__ import main as serve_main

        with pytest.raises(SystemExit):
            serve_main([str(artifact_path)])

    def test_rejects_plain_checkpoint(self, tmp_path, requests_path):
        import numpy as np

        from repro.nn import MLP, save_checkpoint
        from repro.serve.__main__ import main as serve_main

        path = tmp_path / "plain.npz"
        save_checkpoint(MLP([2, 2], np.random.default_rng(0)), path)
        with pytest.raises(ValueError, match="not a model artifact"):
            serve_main([str(path), "--input", str(requests_path)])
