"""Command-line experiment runner (python -m repro.run)."""

import pytest

from repro.run import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--dataset", "proteins25"])
        assert args.method == "ood-gnn"
        assert args.seeds == 2

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "proteins25", "--method", "transformer"])

    def test_reweight_flags(self):
        args = build_parser().parse_args(
            ["--dataset", "proteins25", "--batched-seeds", "--sequential-reweight"]
        )
        assert args.batched_seeds and args.sequential_reweight
        assert not build_parser().parse_args(["--dataset", "proteins25"]).sequential_reweight


class TestMain:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "proteins25" in out
        assert "ood-gnn" in out

    def test_requires_dataset(self):
        with pytest.raises(SystemExit):
            main([])

    def test_tiny_run(self, capsys):
        code = main([
            "--dataset", "proteins25", "--method", "gcn",
            "--seeds", "1", "--epochs", "2", "--scale", "0.15",
            "--hidden-dim", "8", "--num-layers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "train" in out
        assert "Test(large)" in out
