"""Autograd-parity suite for the fused closed-form reweighting engine.

The fused engine (`repro.core.fused`) must be numerically indistinguishable
from the taped reference: loss and analytical gradient to 1e-8 across
shapes, weight vectors and feature-map settings, full inner-loop
trajectories across backends, and an Adam update rule that matches
`repro.nn.optim.Adam` bit for bit.
"""

import numpy as np
import pytest

from repro.autograd.grad_check import numerical_gradient
from repro.autograd.tensor import Tensor
from repro.core import (
    FusedDecorrelation,
    InPlaceAdam,
    OODGNN,
    OODGNNConfig,
    OODGNNTrainer,
    RandomFourierFeatures,
    SampleWeightLearner,
)
from repro.core.fused import DUAL_MODE_AUTO_MAX_GRAM_ELEMENTS
from repro.core.hsic import cached_block_offdiagonal_mask, pairwise_decorrelation_loss
from repro.graph.generators import erdos_renyi
from repro.nn.optim import Adam

PARITY_ATOL = 1e-8

# (n, d, Q) shapes spanning both engine modes: dual kicks in for n <= 8*d*Q.
SHAPES = [
    (8, 3, 2),      # tiny, dual
    (12, 2, 1),     # minimal Q and d, dual
    (40, 6, 3),     # mid, dual
    (64, 16, 4),    # wide, dual
    (100, 3, 1),    # n > 8p, primal in auto mode
    (200, 4, 2),    # n > 8p, primal in auto mode
]


def reference_loss_and_grad(feats, w):
    wt = Tensor(np.asarray(w, dtype=np.float64).copy(), requires_grad=True)
    loss = pairwise_decorrelation_loss(feats, wt)
    loss.backward()
    return float(loss.data), wt.grad


def weight_vectors(rng, n):
    mean_one = rng.uniform(0.1, 2.0, size=n)
    mean_one *= n / mean_one.sum()
    return {
        "uniform": np.ones(n),
        "positive": rng.uniform(0.2, 3.0, size=n),
        "mean-one": mean_one,
    }


class TestEngineParity:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("mode", ["primal", "dual", "auto"])
    def test_loss_and_grad_match_autograd(self, shape, mode):
        n, d, q = shape
        rng = np.random.default_rng(hash(shape) % 2**31)
        feats = rng.normal(size=(n, d, q))
        engine = FusedDecorrelation(feats, mode=mode)
        for name, w in weight_vectors(rng, n).items():
            ref_loss, ref_grad = reference_loss_and_grad(feats, w)
            loss, grad = engine.loss_and_grad(w)
            assert loss == pytest.approx(ref_loss, abs=PARITY_ATOL), (name, mode)
            np.testing.assert_allclose(grad, ref_grad, atol=PARITY_ATOL, err_msg=f"{name}/{mode}")
            assert engine.loss(w) == pytest.approx(loss, abs=PARITY_ATOL)

    @pytest.mark.parametrize("mode", ["primal", "dual"])
    def test_rff_and_linear_feature_maps(self, mode):
        """Parity holds on actual RFF outputs, including the no-RFF ablation."""
        rng = np.random.default_rng(3)
        z = rng.normal(size=(30, 5))
        for rff in (
            RandomFourierFeatures(num_functions=4, rng=np.random.default_rng(0)),
            RandomFourierFeatures(linear=True, rng=np.random.default_rng(0)),
            RandomFourierFeatures(num_functions=2, fraction=0.5, rng=np.random.default_rng(0)),
        ):
            feats = rff(z)
            w = rng.uniform(0.3, 2.0, size=30)
            ref_loss, ref_grad = reference_loss_and_grad(feats, w)
            loss, grad = FusedDecorrelation(feats, mode=mode).loss_and_grad(w)
            assert loss == pytest.approx(ref_loss, abs=PARITY_ATOL)
            np.testing.assert_allclose(grad, ref_grad, atol=PARITY_ATOL)

    @pytest.mark.parametrize("mode", ["primal", "dual"])
    def test_analytical_gradient_passes_grad_check(self, mode):
        """Central differences certify the closed-form gradient directly."""
        rng = np.random.default_rng(11)
        feats = rng.normal(size=(10, 3, 2))
        engine = FusedDecorrelation(feats, mode=mode)
        w = Tensor(rng.uniform(0.5, 1.5, size=10), requires_grad=True)
        _, analytic = engine.loss_and_grad(w.data)
        numeric = numerical_gradient(lambda: Tensor(np.asarray(engine.loss(w.data))), w)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)

    def test_auto_mode_selection(self):
        rng = np.random.default_rng(0)
        assert FusedDecorrelation(rng.normal(size=(16, 4, 2)), mode="auto").mode == "dual"
        assert FusedDecorrelation(rng.normal(size=(100, 3, 1)), mode="auto").mode == "primal"
        big_n = int(np.sqrt(DUAL_MODE_AUTO_MAX_GRAM_ELEMENTS)) + 1
        assert big_n > 8 * 6  # memory preference aside, ratio rule already picks primal
        assert FusedDecorrelation(rng.normal(size=(big_n, 3, 2)), mode="auto").mode == "primal"

    def test_input_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FusedDecorrelation(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError):
            FusedDecorrelation(rng.normal(size=(5, 1, 2)))
        with pytest.raises(ValueError):
            FusedDecorrelation(rng.normal(size=(5, 3, 2)), mode="nope")
        engine = FusedDecorrelation(rng.normal(size=(5, 3, 2)))
        with pytest.raises(ValueError):
            engine.loss(np.ones(4))

    def test_block_mask_cached_and_immutable(self):
        a = cached_block_offdiagonal_mask(4, 3)
        b = cached_block_offdiagonal_mask(4, 3)
        assert a is b
        assert not a.flags.writeable
        from repro.core.hsic import block_offdiagonal_mask

        np.testing.assert_array_equal(a, block_offdiagonal_mask(4, 3))


class TestLearnerParity:
    def _learners(self, num_functions=3, fraction=1.0, linear=False, **kwargs):
        def make(backend):
            # Identically-seeded samplers: both backends consume the rng
            # through the same calls, so they see the same random features.
            rff = RandomFourierFeatures(
                num_functions=num_functions,
                fraction=fraction,
                linear=linear,
                rng=np.random.default_rng(17),
            )
            return SampleWeightLearner(rff, backend=backend, **kwargs)

        return make("autograd"), make("fused")

    @pytest.mark.parametrize(
        "case",
        [
            dict(),
            dict(linear=True),
            dict(fraction=0.6, num_functions=2),
            dict(resample_rff=True),
        ],
        ids=["default", "linear", "fraction", "resample"],
    )
    def test_trajectories_match(self, case):
        """Both backends walk the same loss trajectory to 1e-8."""
        rng = np.random.default_rng(5)
        z = rng.normal(size=(50, 6))
        z[:, 1] = np.tanh(z[:, 0]) + 0.1 * rng.normal(size=50)
        auto, fused = self._learners(epochs=5, lr=0.05, l2_penalty=0.05, **case)
        res_a = auto.learn(z)
        res_f = fused.learn(z)
        assert res_f.initial_loss == pytest.approx(res_a.initial_loss, abs=PARITY_ATOL)
        np.testing.assert_allclose(res_f.losses, res_a.losses, atol=PARITY_ATOL)
        np.testing.assert_allclose(res_f.weights, res_a.weights, atol=PARITY_ATOL)

    def test_trajectories_match_with_fixed_global_weights(self):
        rng = np.random.default_rng(9)
        z = rng.normal(size=(60, 5))
        auto, fused = self._learners(epochs=4, lr=0.1, l2_penalty=0.1)
        fixed = np.full(20, 1.5)
        res_a = auto.learn(z, fixed_weights=fixed)
        res_f = fused.learn(z, fixed_weights=fixed)
        assert res_f.weights.shape == (40,)
        np.testing.assert_allclose(res_f.losses, res_a.losses, atol=PARITY_ATOL)
        np.testing.assert_allclose(res_f.weights, res_a.weights, atol=PARITY_ATOL)

    def test_decorrelation_loss_dispatch_matches_reference(self):
        rng = np.random.default_rng(2)
        z = rng.normal(size=(30, 4))
        auto, fused = self._learners(epochs=1)
        w = np.ones(30)
        ref = float(auto.decorrelation_loss(z, Tensor(w)).data)
        val = float(fused.decorrelation_loss(z, w).data)
        assert val == pytest.approx(ref, abs=PARITY_ATOL)
        # A taped weight vector still goes through the reference path.
        wt = Tensor(w, requires_grad=True)
        taped = fused.decorrelation_loss(z, wt)
        taped.backward()
        assert wt.grad is not None

    def test_invalid_backend_rejected(self):
        rff = RandomFourierFeatures(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            SampleWeightLearner(rff, backend="torch")


class TestInPlaceAdam:
    def test_matches_reference_adam(self):
        rng = np.random.default_rng(21)
        start = rng.normal(size=12)
        ref_param = Tensor(start.copy(), requires_grad=True)
        ref_opt = Adam([ref_param], lr=0.03)
        fused_param = start.copy()
        fused_opt = InPlaceAdam(12, lr=0.03)
        for step in range(25):
            grad = np.sin(fused_param + step)  # deterministic pseudo-gradients
            ref_param.grad = np.sin(ref_param.data + step)
            ref_opt.step()
            fused_opt.step(fused_param, grad)
            np.testing.assert_array_equal(fused_param, ref_param.data)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            InPlaceAdam(4, lr=0.0)


def _toy_graphs(seed, n=30):
    rng = np.random.default_rng(seed)
    graphs = []
    for i in range(n):
        label = i % 2
        g = erdos_renyi(int(rng.integers(6, 10)), 0.7 if label else 0.15, rng)
        g.y = label
        graphs.append(g)
    return graphs


def _fit_history(backend, seed=13):
    cfg = OODGNNConfig(
        hidden_dim=8,
        num_layers=2,
        epochs=3,
        batch_size=10,
        reweight_epochs=3,
        warmup_fraction=0.34,
        reweight_backend=backend,
    )
    model = OODGNN(1, 2, np.random.default_rng(seed), config=cfg)
    trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(seed + 1), config=cfg)
    return trainer.fit(_toy_graphs(seed + 2))


class TestTrainerDeterminism:
    @pytest.mark.parametrize("backend", ["autograd", "fused"])
    def test_same_seed_identical_histories(self, backend):
        """Two fit runs with the same seed are bitwise identical."""
        h1 = _fit_history(backend)
        h2 = _fit_history(backend)
        assert h1.train_loss == h2.train_loss
        assert h1.decorrelation_loss == h2.decorrelation_loss
        np.testing.assert_array_equal(h1.final_weights, h2.final_weights)

    def test_backend_threaded_from_config(self):
        for backend in ("autograd", "fused"):
            cfg = OODGNNConfig(hidden_dim=8, num_layers=2, reweight_backend=backend)
            model = OODGNN(1, 2, np.random.default_rng(0), config=cfg)
            trainer = OODGNNTrainer(model, "multiclass", np.random.default_rng(1), config=cfg)
            assert trainer.weight_learner.backend == backend

    def test_backends_agree_on_early_dynamics(self):
        """Loss histories of the two backends stay close over a short run."""
        h_auto = _fit_history("autograd")
        h_fused = _fit_history("fused")
        np.testing.assert_allclose(h_fused.train_loss, h_auto.train_loss, rtol=1e-5)
        np.testing.assert_allclose(
            h_fused.decorrelation_loss, h_auto.decorrelation_loss, rtol=1e-5
        )
