"""Documentation checker: internal links, code references, doctest blocks.

Validates the repository's markdown documentation (README.md and
docs/*.md):

* every relative markdown link ``[text](path)`` resolves to an existing
  file or directory (external ``http(s)``/``mailto`` links are skipped);
* every anchor link ``[text](path#anchor)`` matches a heading in the
  target document (GitHub slug rules: lowercase, spaces to dashes,
  punctuation dropped);
* every backtick reference to a repository path (``src/...``,
  ``tests/...``, ``benchmarks/...``, ``docs/...``, ``tools/...``)
  points at an existing file;
* all ``>>>`` doctest examples execute and produce the documented
  output (``python -m doctest`` semantics).

Exit code 0 when everything checks out, 1 otherwise.  Run from anywhere:

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_PATH = re.compile(r"`((?:src|tests|benchmarks|docs|tools)/[A-Za-z0-9_./-]+)`")
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"\s+", "-", slug)


def heading_slugs(path: Path) -> set[str]:
    return {github_slug(m.group(1)) for m in _HEADING.finditer(path.read_text())}


def check_links(path: Path) -> list[str]:
    """Problems with markdown links and backtick path references."""
    problems = []
    text = path.read_text()
    prose = _FENCE.sub("", text)  # don't treat code-block contents as links
    for match in _LINK.finditer(prose):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        if not resolved.exists():
            problems.append(f"{path.name}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md" and github_slug(anchor) not in heading_slugs(resolved):
            problems.append(f"{path.name}: missing anchor -> {target}")
    for match in _CODE_PATH.finditer(text):
        ref = match.group(1).rstrip("/")
        if not (REPO_ROOT / ref).exists():
            problems.append(f"{path.name}: dangling path reference -> `{match.group(1)}`")
    return problems


def check_doctests(path: Path) -> list[str]:
    """Failing ``>>>`` examples in the document, if any."""
    results = doctest.testfile(
        str(path), module_relative=False, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    if results.failed:
        return [f"{path.name}: {results.failed}/{results.attempted} doctest examples failed"]
    return []


def main() -> int:
    problems: list[str] = []
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"missing documentation file: {doc.relative_to(REPO_ROOT)}")
            continue
        problems.extend(check_links(doc))
        problems.extend(check_doctests(doc))
    if problems:
        print("documentation check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    names = ", ".join(d.relative_to(REPO_ROOT).as_posix() for d in DOC_FILES)
    print(f"documentation check passed ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
