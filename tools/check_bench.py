"""Bench-regression gate: compare a fresh BENCH_*.json against its baseline.

CI's bench-smoke job runs every benchmark at a tiny shape and uploads the
fresh JSON; this tool closes the loop by failing the job when a *speedup
ratio* collapses relative to the committed full-shape baseline::

    python tools/check_bench.py fresh.json benchmarks/BENCH_inference.json

Design constraints (why the gate is tolerance-based and shape-aware):

* Absolute throughput is machine-dependent — shared CI runners are slower
  and noisier than the box that produced the committed numbers — so only
  dimensionless **speedup ratios** are compared (any numeric key named
  ``speedup`` or ``speedup_*`` / ``*_speedup*``, found recursively).
* Tiny shapes do not meet the full-shape acceptance floors (per-op Python
  overhead dominates), so when the two files' ``shape`` blocks differ the
  tolerance is the loose ``--tiny-tolerance`` (default 0.25: flag only a
  collapse, e.g. a fused path silently falling back to eager), and when
  the shapes match it is ``--tolerance`` (default 0.6).
* A fresh ratio may legitimately *exceed* the baseline; only regressions
  fail.  Metrics present in one file but not the other are reported but
  never fatal (benchmarks grow fields over time).
* **Overhead ratios** (keys named ``*overhead_ratio*``) gate against an
  absolute ceiling instead of the baseline: instrumentation overhead is
  a budget, not a speedup — the observability bench's metrics-on/off
  ratio must stay <= ``--overhead-max`` (default 1.02, i.e. < 2%)
  regardless of what any previous run measured.
* **Availability** (keys named ``*availability*``, excluding declared
  budgets like ``availability_floor``) gates against an absolute
  **floor**, also baseline-free: the fault-tolerance bench's fraction of
  requests served within deadline is dimensionless and machine-
  independent, so even tiny CI shapes must stay >= ``--availability-min``
  (default 0.99).

Exit code 0 = within tolerance, 1 = regression, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys


def collect_speedups(payload, prefix: str = "") -> dict[str, float]:
    """Recursively gather ``{dotted.path: value}`` for speedup-ratio keys."""
    found: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and not isinstance(value, bool) and "speedup" in key:
                found[path] = float(value)
            else:
                found.update(collect_speedups(value, path))
    return found


def collect_overheads(payload, prefix: str = "") -> dict[str, float]:
    """Recursively gather ``{dotted.path: value}`` for overhead-ratio keys.

    Only measurement keys qualify — budget/config keys (``overhead_max``
    and friends) are not themselves gated.
    """
    found: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if (isinstance(value, (int, float)) and not isinstance(value, bool)
                    and "overhead_ratio" in key):
                found[path] = float(value)
            else:
                found.update(collect_overheads(value, path))
    return found


def collect_availabilities(payload, prefix: str = "") -> dict[str, float]:
    """Recursively gather ``{dotted.path: value}`` for availability keys.

    Declared budgets (``availability_floor`` / ``availability_min``) are
    configuration, not measurements, and are skipped.
    """
    found: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if (isinstance(value, (int, float)) and not isinstance(value, bool)
                    and "availability" in key
                    and not key.endswith(("_floor", "_min"))):
                found[path] = float(value)
            else:
                found.update(collect_availabilities(value, path))
    return found


def compare(fresh: dict, baseline: dict, tolerance: float, tiny_tolerance: float,
            overhead_max: float = 1.02, availability_min: float = 0.99):
    """Return ``(regressions, notes)`` comparing fresh vs baseline ratios."""
    notes: list[str] = []
    regressions: list[str] = []
    if fresh.get("benchmark") != baseline.get("benchmark"):
        regressions.append(
            f"benchmark kind mismatch: fresh={fresh.get('benchmark')!r} "
            f"baseline={baseline.get('benchmark')!r}"
        )
        return regressions, notes
    same_shape = fresh.get("shape") == baseline.get("shape")
    threshold = tolerance if same_shape else tiny_tolerance
    notes.append(
        f"shape {'matches baseline' if same_shape else 'differs (tiny-shape run)'}; "
        f"required fraction of baseline speedup: {threshold}"
    )
    fresh_ratios = collect_speedups(fresh)
    base_ratios = collect_speedups(baseline)
    for path, base_value in sorted(base_ratios.items()):
        fresh_value = fresh_ratios.get(path)
        if fresh_value is None:
            notes.append(f"  {path}: missing from fresh run (baseline {base_value:.2f}x)")
            continue
        floor = base_value * threshold
        status = "OK" if fresh_value >= floor else "REGRESSION"
        notes.append(
            f"  {path}: fresh {fresh_value:.2f}x vs baseline {base_value:.2f}x "
            f"(floor {floor:.2f}x) {status}"
        )
        if fresh_value < floor:
            regressions.append(
                f"{path}: {fresh_value:.2f}x < {floor:.2f}x "
                f"({threshold} x baseline {base_value:.2f}x)"
            )
    for path in sorted(set(fresh_ratios) - set(base_ratios)):
        notes.append(f"  {path}: new metric ({fresh_ratios[path]:.2f}x), no baseline")
    # Overhead ratios gate against the absolute ceiling, baseline-free.
    for path, value in sorted(collect_overheads(fresh).items()):
        status = "OK" if value <= overhead_max else "OVER BUDGET"
        notes.append(
            f"  {path}: fresh {value:.4f}x vs ceiling {overhead_max:.2f}x {status}"
        )
        if value > overhead_max:
            regressions.append(
                f"{path}: overhead {value:.4f}x exceeds the {overhead_max:.2f}x ceiling"
            )
    # Availability gates against the absolute floor, baseline-free.
    for path, value in sorted(collect_availabilities(fresh).items()):
        status = "OK" if value >= availability_min else "BELOW FLOOR"
        notes.append(
            f"  {path}: fresh {value:.4f} vs floor {availability_min:.2f} {status}"
        )
        if value < availability_min:
            regressions.append(
                f"{path}: availability {value:.4f} below the {availability_min:.2f} floor"
            )
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON written by this run")
    parser.add_argument("baseline", help="committed benchmarks/BENCH_*.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.6,
        help="required fraction of the baseline speedup when shapes match (default 0.6)",
    )
    parser.add_argument(
        "--tiny-tolerance", type=float, default=0.25,
        help="required fraction when shapes differ, e.g. CI tiny runs (default 0.25)",
    )
    parser.add_argument(
        "--overhead-max", type=float, default=1.02,
        help="absolute ceiling for overhead-ratio metrics (default 1.02 = <2%%)",
    )
    parser.add_argument(
        "--availability-min", type=float, default=0.99,
        help="absolute floor for availability metrics (default 0.99)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.fresh) as fh:
            fresh = json.load(fh)
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench: cannot read inputs: {err}", file=sys.stderr)
        return 2
    regressions, notes = compare(
        fresh, baseline, args.tolerance, args.tiny_tolerance,
        overhead_max=args.overhead_max, availability_min=args.availability_min,
    )
    print(f"check_bench: {args.fresh} vs {args.baseline}")
    for line in notes:
        print(line)
    if regressions:
        print("bench regression gate FAILED:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
